"""Deterministic fault injection for any Thetacrypt transport.

Thetacrypt's model (§3.2) assumes reliable point-to-point channels and
tolerates up to *t* corrupted nodes.  This module exercises that claim: a
:class:`FaultyNetwork` wraps any :class:`~repro.network.interfaces.P2PNetwork`
(local, tcp, gossip — anything handed to the
:class:`~repro.network.manager.NetworkManager`) and injects faults drawn from
a seeded :class:`FaultPlan`:

* per-link **drop / delay / duplicate / reorder** probabilities,
* scheduled **partitions** with optional heal times,
* **crash-stop** and **crash-recovery** of whole nodes, and
* **Byzantine** corruption of outgoing share payloads.

All probabilistic decisions come from one :class:`random.Random` stream per
directed link, seeded from ``(plan.seed, src, dst)``; each message consumes a
fixed number of draws, so two runs with the same plan and the same per-link
message order make identical decisions — the property the determinism test
suite pins down.  Time-dependent faults (partitions, crashes) are pure
functions of the plan and a monotonic clock started at ``start()``.

Every injected fault increments ``repro_faults_injected{node,kind}`` on the
process-wide registry, so chaos runs are observable through the same
Prometheus scrape as everything else (see docs/robustness.md).
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.messages import ProtocolMessage
from ..errors import ConfigurationError
from ..telemetry import counter
from .interfaces import MessageHandler, P2PNetwork

#: One counter family for every fault kind this module can inject.
_FAULTS = counter(
    "repro_faults_injected",
    "Faults injected by FaultyNetwork, per node and fault kind.",
    ("node", "kind"),
)

#: Fault kinds, in the order decisions are drawn (documented for tests).
FAULT_KINDS = (
    "drop",
    "delay",
    "duplicate",
    "reorder",
    "corrupt",
    "partition",
    "crash",
)


@dataclass(frozen=True)
class LinkFaults:
    """Per-link fault probabilities and delay parameters.

    ``drop``/``duplicate``/``reorder``/``corrupt`` are probabilities in
    [0, 1]; ``delay`` is a fixed extra one-way latency in seconds and
    ``jitter`` adds a uniform [0, jitter) component on top.
    """

    drop: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} probability {p} outside [0, 1]")
        if self.delay < 0 or self.jitter < 0:
            raise ConfigurationError("delay/jitter must be non-negative")


@dataclass(frozen=True)
class Partition:
    """A scheduled network partition: nodes in different groups cannot talk.

    ``start``/``heal`` are seconds since the fault clock started; ``heal``
    ``None`` means the partition never heals.  Nodes absent from every group
    are unaffected.
    """

    groups: tuple[tuple[int, ...], ...]
    start: float = 0.0
    heal: float | None = None

    def active(self, now: float) -> bool:
        return now >= self.start and (self.heal is None or now < self.heal)

    def separates(self, a: int, b: int) -> bool:
        side_a = side_b = None
        for index, group in enumerate(self.groups):
            if a in group:
                side_a = index
            if b in group:
                side_b = index
        return side_a is not None and side_b is not None and side_a != side_b


@dataclass(frozen=True)
class Crash:
    """Crash-stop (``recover`` None) or crash-recovery of one node."""

    node: int
    at: float = 0.0
    recover: float | None = None

    def active(self, now: float) -> bool:
        return now >= self.at and (self.recover is None or now < self.recover)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos scenario.

    ``links`` overrides the ``default`` link faults for directed links,
    keyed ``"src->dst"`` with ``"*"`` as a wildcard on either side.
    ``byzantine`` nodes have their outgoing protocol payloads corrupted
    with probability ``byzantine_rate``.
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    links: Mapping[str, LinkFaults] = field(default_factory=dict)
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[Crash, ...] = ()
    byzantine: tuple[int, ...] = ()
    byzantine_rate: float = 1.0
    #: How long a reordered message is held back at most (seconds).
    reorder_hold: float = 0.05

    def link(self, src: int, dst: int) -> LinkFaults:
        for key in (f"{src}->{dst}", f"{src}->*", f"*->{dst}"):
            if key in self.links:
                return self.links[key]
        return self.default

    def partitioned(self, a: int, b: int, now: float) -> bool:
        return any(
            p.active(now) and p.separates(a, b) for p in self.partitions
        )

    def crashed(self, node: int, now: float) -> bool:
        return any(c.node == node and c.active(now) for c in self.crashes)

    def is_byzantine(self, node: int) -> bool:
        return node in self.byzantine

    # -- serialization (NodeConfig embedding) ---------------------------------

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["links"] = {
            key: dataclasses.asdict(value) for key, value in self.links.items()
        }
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @staticmethod
    def from_dict(payload: dict) -> "FaultPlan":
        data = dict(payload)
        default = LinkFaults(**data.pop("default", {}))
        links = {
            key: LinkFaults(**value)
            for key, value in data.pop("links", {}).items()
        }
        partitions = tuple(
            Partition(
                groups=tuple(tuple(g) for g in p["groups"]),
                start=p.get("start", 0.0),
                heal=p.get("heal"),
            )
            for p in data.pop("partitions", ())
        )
        crashes = tuple(Crash(**c) for c in data.pop("crashes", ()))
        byzantine = tuple(data.pop("byzantine", ()))
        return FaultPlan(
            default=default,
            links=links,
            partitions=partitions,
            crashes=crashes,
            byzantine=byzantine,
            **data,
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(text))


@dataclass(frozen=True)
class FaultDecision:
    """The probabilistic outcome for one message on one link."""

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    corrupt: bool = False
    delay: float = 0.0

    @property
    def kinds(self) -> tuple[str, ...]:
        kinds = []
        if self.drop:
            kinds.append("drop")
        if self.delay > 0:
            kinds.append("delay")
        if self.duplicate:
            kinds.append("duplicate")
        if self.reorder:
            kinds.append("reorder")
        if self.corrupt:
            kinds.append("corrupt")
        return tuple(kinds)


def corrupt_frame(data: bytes, rng: random.Random) -> bytes:
    """Byzantine corruption of one wire frame.

    Tries to parse the frame as a (possibly channel-tagged) serialized
    :class:`ProtocolMessage` and flips one payload byte, which keeps the
    envelope routable — the receiving executor must *reject* the share via
    its verification path rather than fail to parse the message.  Frames
    that do not parse get a byte flipped in the middle instead (receivers
    must survive that too).
    """
    for offset in (1, 0):
        try:
            message = ProtocolMessage.from_bytes(data[offset:])
        except Exception:  # noqa: BLE001 - not a protocol frame at this offset
            continue
        if not message.payload:
            break
        payload = bytearray(message.payload)
        index = rng.randrange(len(payload))
        payload[index] ^= 0xFF
        corrupted = dataclasses.replace(message, payload=bytes(payload))
        return data[:offset] + corrupted.to_bytes()
    if not data:
        return data
    buf = bytearray(data)
    buf[len(buf) // 2] ^= 0xFF
    return bytes(buf)


class FaultInjector:
    """Pure decision engine behind :class:`FaultyNetwork`.

    Kept separate from the asyncio wrapper so the discrete-event simulator
    and the determinism tests can consume the exact same fault schedule
    without a transport underneath.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rngs: dict[tuple[int, int], random.Random] = {}

    def link_rng(self, src: int, dst: int) -> random.Random:
        rng = self._rngs.get((src, dst))
        if rng is None:
            digest = hashlib.sha256(
                f"fault-plan:{self.plan.seed}:{src}->{dst}".encode()
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._rngs[(src, dst)] = rng
        return rng

    def decide(self, src: int, dst: int) -> FaultDecision:
        """Draw the fault outcome for the next message ``src`` → ``dst``.

        Always consumes the same number of draws regardless of outcome, so
        schedules stay aligned across runs and across fault-kind subsets.
        """
        faults = self.plan.link(src, dst)
        rng = self.link_rng(src, dst)
        u_drop = rng.random()
        u_dup = rng.random()
        u_reorder = rng.random()
        u_corrupt = rng.random()
        u_jitter = rng.random()
        corrupt_p = faults.corrupt
        if self.plan.is_byzantine(src):
            corrupt_p = max(corrupt_p, self.plan.byzantine_rate)
        delay = faults.delay + faults.jitter * u_jitter
        return FaultDecision(
            drop=u_drop < faults.drop,
            duplicate=u_dup < faults.duplicate,
            reorder=u_reorder < faults.reorder,
            corrupt=u_corrupt < corrupt_p,
            delay=delay,
        )

    def corrupt(self, src: int, dst: int, data: bytes) -> bytes:
        return corrupt_frame(data, self.link_rng(src, dst))


class FaultyNetwork(P2PNetwork):
    """A :class:`P2PNetwork` that injects faults from a :class:`FaultPlan`.

    Wrap the raw transport *before* handing it to the
    :class:`~repro.network.manager.NetworkManager`::

        transport = FaultyNetwork(hub.endpoint(node_id), plan)
        node = ThetacryptNode(config, transport=transport)

    Send-side faults (drop/delay/duplicate/reorder/corrupt, partitions, the
    sender's own crash) are applied per directed link; the receive side
    additionally suppresses delivery while this node is crashed or the link
    is partitioned (covering peers whose transport is not wrapped).
    """

    def __init__(
        self,
        base: P2PNetwork,
        plan: FaultPlan,
        clock: Callable[[], float] | None = None,
    ):
        self.node_id = base.node_id
        self._base = base
        self.plan = plan
        self.injector = FaultInjector(plan)
        self._handler: MessageHandler | None = None
        self._clock = clock
        self._started_at: float | None = None
        self._tasks: set[asyncio.Task] = set()
        #: Messages held back for reordering, per recipient.
        self._held: dict[int, list[bytes]] = {}
        self._counters: dict[str, object] = {}
        base.set_handler(self._on_receive)

    # -- clock ----------------------------------------------------------------

    def now(self) -> float:
        """Seconds since ``start()`` on the fault clock (0 before start)."""
        if self._clock is not None:
            return self._clock()
        if self._started_at is None:
            return 0.0
        return asyncio.get_running_loop().time() - self._started_at

    # -- P2PNetwork interface -------------------------------------------------

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def peer_ids(self) -> list[int]:
        return self._base.peer_ids()

    async def start(self) -> None:
        await self._base.start()
        if self._clock is None:
            self._started_at = asyncio.get_running_loop().time()

    async def stop(self) -> None:
        for task in list(self._tasks):
            task.cancel()
        self._tasks.clear()
        self._held.clear()
        await self._base.stop()

    async def send(self, recipient: int, data: bytes) -> None:
        now = self.now()
        if self.plan.crashed(self.node_id, now):
            self._count("crash")
            return
        if self.plan.crashed(recipient, now):
            # The peer is down; a real wire would accept the frame and lose
            # it.  Count it as a crash-induced loss on the sender.
            self._count("crash")
            return
        if self.plan.partitioned(self.node_id, recipient, now):
            self._count("partition")
            return
        decision = self.injector.decide(self.node_id, recipient)
        if decision.drop:
            self._count("drop")
            return
        payload = data
        if decision.corrupt:
            payload = self.injector.corrupt(self.node_id, recipient, data)
            self._count("corrupt")
        if decision.reorder:
            # Hold the message back; it is released after the *next* message
            # on this link (true reordering) or after ``reorder_hold``.
            self._count("reorder")
            self._held.setdefault(recipient, []).append(payload)
            self._spawn(self._flush_held_later(recipient))
            return
        if decision.delay > 0:
            self._count("delay")
            self._spawn(self._deliver_later(recipient, payload, decision.delay))
        else:
            await self._base.send(recipient, payload)
        if decision.duplicate:
            self._count("duplicate")
            await self._base.send(recipient, payload)
        await self._flush_held(recipient)

    async def broadcast(self, data: bytes) -> None:
        # Per-recipient sends so every directed link draws its own faults.
        for peer in self.peer_ids():
            await self.send(peer, data)

    # -- internals -------------------------------------------------------------

    def _count(self, kind: str) -> None:
        child = self._counters.get(kind)
        if child is None:
            child = _FAULTS.labels(str(self.node_id), kind)
            self._counters[kind] = child
        child.inc()

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _deliver_later(self, recipient: int, data: bytes, delay: float) -> None:
        await asyncio.sleep(delay)
        await self._base.send(recipient, data)

    async def _flush_held(self, recipient: int) -> None:
        held = self._held.pop(recipient, None)
        if held:
            for frame in held:
                await self._base.send(recipient, frame)

    async def _flush_held_later(self, recipient: int) -> None:
        await asyncio.sleep(self.plan.reorder_hold)
        await self._flush_held(recipient)

    async def _on_receive(self, sender: int, data: bytes) -> None:
        now = self.now()
        if self.plan.crashed(self.node_id, now):
            self._count("crash")
            return
        if self.plan.partitioned(sender, self.node_id, now):
            self._count("partition")
            return
        if self._handler is not None:
            await self._handler(sender, data)
