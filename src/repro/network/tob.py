"""Total-order broadcast: a minimal sequencer-based implementation.

Thetacrypt treats the TOB channel as a black box provided by the host
platform (a blockchain's consensus, §3.6).  For standalone deployments this
module supplies a simple sequencer: node ``sequencer_id`` stamps submissions
with consecutive sequence numbers and re-broadcasts them; every node buffers
and delivers in stamp order, so all nodes observe the same message sequence.

An optional ``block_interval`` batches submissions into "blocks" before
stamping, mimicking the delivery rhythm of a ledger — useful for the
TOB-vs-P2P ablation benchmark.
"""

from __future__ import annotations

import asyncio

from ..serialization import Reader, encode_bytes, encode_int
from ..telemetry import ChannelMetrics
from .interfaces import MessageHandler, P2PNetwork, TotalOrderBroadcast

_SUBMIT = 0
_ORDERED = 1


class SequencerTob(TotalOrderBroadcast):
    """Sequencer-stamped total order over a P2P transport."""

    def __init__(
        self,
        transport: P2PNetwork,
        sequencer_id: int = 1,
        block_interval: float = 0.0,
    ):
        self._transport = transport
        self._sequencer_id = sequencer_id
        self._block_interval = block_interval
        self._handler: MessageHandler | None = None
        self._next_stamp = 0  # sequencer state
        self._next_delivery = 0
        self._pending: dict[int, tuple[int, bytes]] = {}
        self._block_queue: list[tuple[int, bytes]] = []
        self._block_task: asyncio.Task | None = None
        self._metrics = ChannelMetrics(transport.node_id, "tob")
        transport.set_handler(self._on_frame)

    @property
    def is_sequencer(self) -> bool:
        return self._transport.node_id == self._sequencer_id

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    async def start(self) -> None:
        await self._transport.start()

    async def stop(self) -> None:
        if self._block_task is not None:
            self._block_task.cancel()
        await self._transport.stop()

    # -- submission -----------------------------------------------------------

    async def submit(self, data: bytes) -> None:
        frame = encode_int(_SUBMIT) + encode_int(self._transport.node_id) + encode_bytes(data)
        with self._metrics.time_send():
            if self.is_sequencer:
                await self._sequence(self._transport.node_id, data)
            else:
                await self._transport.send(self._sequencer_id, frame)
        self._metrics.sent(len(data))

    # -- sequencer side ------------------------------------------------------------

    async def _sequence(self, origin: int, data: bytes) -> None:
        if self._block_interval > 0:
            self._block_queue.append((origin, data))
            if self._block_task is None or self._block_task.done():
                self._block_task = asyncio.get_running_loop().create_task(
                    self._flush_block_later()
                )
            return
        await self._stamp_and_broadcast(origin, data)

    async def _flush_block_later(self) -> None:
        await asyncio.sleep(self._block_interval)
        queue, self._block_queue = self._block_queue, []
        for origin, data in queue:
            await self._stamp_and_broadcast(origin, data)

    async def _stamp_and_broadcast(self, origin: int, data: bytes) -> None:
        stamp = self._next_stamp
        self._next_stamp += 1
        frame = (
            encode_int(_ORDERED)
            + encode_int(stamp)
            + encode_int(origin)
            + encode_bytes(data)
        )
        await self._transport.broadcast(frame)
        await self._on_ordered(stamp, origin, data)

    # -- delivery ----------------------------------------------------------------

    async def _on_frame(self, sender: int, frame: bytes) -> None:
        reader = Reader(frame)
        kind = reader.read_int()
        if kind == _SUBMIT:
            origin = reader.read_int()
            data = reader.read_bytes()
            reader.finish()
            if self.is_sequencer:
                await self._sequence(origin, data)
        elif kind == _ORDERED:
            stamp = reader.read_int()
            origin = reader.read_int()
            data = reader.read_bytes()
            reader.finish()
            await self._on_ordered(stamp, origin, data)

    async def _on_ordered(self, stamp: int, origin: int, data: bytes) -> None:
        self._pending[stamp] = (origin, data)
        while self._next_delivery in self._pending:
            deliver_origin, deliver_data = self._pending.pop(self._next_delivery)
            self._next_delivery += 1
            self._metrics.received(len(deliver_data))
            if self._handler is not None:
                await self._handler(deliver_origin, deliver_data)
