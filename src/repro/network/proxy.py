"""Proxy modules: delegate communication to an already-running host platform.

"The concrete implementation of network components can either be an actual
networking module or a proxy module that delegates the operations to a
remote node" (§3.6).  A proxy speaks a small JSON-lines RPC to the host's
communication endpoint: the client interface inserts messages into the
host's network and the server interface collects messages from it —
mirroring the gRPC pair described in the paper.

:class:`HostPlatformBridge` is our reference host-side implementation: it
exposes that endpoint on top of any of our own transports, closing the loop
so the proxies can be exercised end-to-end in tests (one process plays the
"blockchain node", the Thetacrypt node attaches to it).
"""

from __future__ import annotations

import asyncio
import json

from ..errors import NetworkError
from ..serialization import hexlify, unhexlify
from .interfaces import MessageHandler, P2PNetwork, TotalOrderBroadcast


async def _write_line(writer: asyncio.StreamWriter, obj: dict) -> None:
    writer.write(json.dumps(obj).encode("utf-8") + b"\n")
    await writer.drain()


class P2PProxy(P2PNetwork):
    """P2P component that forwards through a host platform's endpoint."""

    def __init__(self, node_id: int, host: str, port: int, peer_count: int):
        self.node_id = node_id
        self._host = host
        self._port = port
        self._peer_count = peer_count
        self._handler: MessageHandler | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._listen_task: asyncio.Task | None = None

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def peer_ids(self) -> list[int]:
        return [i for i in range(1, self._peer_count + 1) if i != self.node_id]

    async def start(self) -> None:
        reader, writer = await asyncio.open_connection(self._host, self._port)
        self._writer = writer
        await _write_line(writer, {"method": "attach", "node": self.node_id})
        self._listen_task = asyncio.get_running_loop().create_task(
            self._listen(reader)
        )

    async def stop(self) -> None:
        if self._listen_task is not None:
            self._listen_task.cancel()
        if self._writer is not None:
            self._writer.close()

    async def _listen(self, reader: asyncio.StreamReader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            event = json.loads(line)
            if event.get("event") == "p2p" and self._handler is not None:
                await self._handler(event["sender"], unhexlify(event["data"]))

    async def _call(self, obj: dict) -> None:
        if self._writer is None:
            raise NetworkError("P2P proxy not started")
        await _write_line(self._writer, obj)

    async def send(self, recipient: int, data: bytes) -> None:
        await self._call(
            {"method": "p2p_send", "recipient": recipient, "data": hexlify(data)}
        )

    async def broadcast(self, data: bytes) -> None:
        await self._call({"method": "p2p_broadcast", "data": hexlify(data)})


class TobProxy(TotalOrderBroadcast):
    """TOB component that rides the host platform's atomic broadcast."""

    def __init__(self, node_id: int, host: str, port: int):
        self._node_id = node_id
        self._host = host
        self._port = port
        self._handler: MessageHandler | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._listen_task: asyncio.Task | None = None

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    async def start(self) -> None:
        reader, writer = await asyncio.open_connection(self._host, self._port)
        self._writer = writer
        await _write_line(writer, {"method": "attach_tob", "node": self._node_id})
        self._listen_task = asyncio.get_running_loop().create_task(
            self._listen(reader)
        )

    async def stop(self) -> None:
        if self._listen_task is not None:
            self._listen_task.cancel()
        if self._writer is not None:
            self._writer.close()

    async def _listen(self, reader: asyncio.StreamReader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            event = json.loads(line)
            if event.get("event") == "tob" and self._handler is not None:
                await self._handler(event["sender"], unhexlify(event["data"]))

    async def submit(self, data: bytes) -> None:
        if self._writer is None:
            raise NetworkError("TOB proxy not started")
        await _write_line(
            self._writer, {"method": "tob_submit", "data": hexlify(data)}
        )


class HostPlatformBridge:
    """Host-side endpoint: bridges attached proxies onto real transports.

    One bridge per "host platform node"; it owns a P2P transport (and
    optionally a TOB component) in the host's stack and relays traffic to
    and from the locally attached Thetacrypt proxies.
    """

    def __init__(
        self,
        listen_host: str,
        listen_port: int,
        transport: P2PNetwork,
        tob: TotalOrderBroadcast | None = None,
    ):
        self._listen_host = listen_host
        self._listen_port = listen_port
        self._transport = transport
        self._tob = tob
        self._server: asyncio.AbstractServer | None = None
        self._p2p_clients: list[asyncio.StreamWriter] = []
        self._tob_clients: list[asyncio.StreamWriter] = []
        transport.set_handler(self._on_p2p)
        if tob is not None:
            tob.set_handler(self._on_tob)

    async def start(self) -> None:
        await self._transport.start()
        self._server = await asyncio.start_server(
            self._on_client, self._listen_host, self._listen_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._transport.stop()

    async def _on_p2p(self, sender: int, data: bytes) -> None:
        for writer in self._p2p_clients:
            await _write_line(
                writer, {"event": "p2p", "sender": sender, "data": hexlify(data)}
            )

    async def _on_tob(self, sender: int, data: bytes) -> None:
        for writer in self._tob_clients:
            await _write_line(
                writer, {"event": "tob", "sender": sender, "data": hexlify(data)}
            )

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._client_loop(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            # Loop teardown or a proxy that vanished: nothing to clean up
            # beyond dropping the connection.
            return

    async def _client_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            request = json.loads(line)
            method = request.get("method")
            if method == "attach":
                self._p2p_clients.append(writer)
            elif method == "attach_tob":
                self._tob_clients.append(writer)
            elif method == "p2p_send":
                await self._transport.send(
                    request["recipient"], unhexlify(request["data"])
                )
            elif method == "p2p_broadcast":
                await self._transport.broadcast(unhexlify(request["data"]))
            elif method == "tob_submit" and self._tob is not None:
                await self._tob.submit(unhexlify(request["data"]))
