"""Flooding gossip overlay over any base transport.

Plays the role libp2p's gossip protocol plays in the original (§3.6): every
node keeps links to a subset of peers (ring neighbours plus random shortcut
links, giving a connected low-diameter overlay) and floods messages with
duplicate suppression.  Directed messages also travel by flooding but only
their addressee hands them up, so the overlay exposes the same
:class:`P2PNetwork` interface as a full mesh.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from collections import OrderedDict

from ..serialization import Reader, encode_bytes, encode_int
from ..telemetry import ChannelMetrics, counter
from .interfaces import MessageHandler, P2PNetwork

_BROADCAST = 0
_SEEN_CACHE = 65536

#: Envelopes whose id was already seen and were therefore not re-flooded —
#: the overlay's duplicate-suppression effectiveness measure.
_DUPLICATES = counter(
    "repro_gossip_duplicates_total",
    "Gossip envelopes suppressed as duplicates, per node.",
    ("node",),
)


class GossipOverlay(P2PNetwork):
    """Gossip semantics on top of a base :class:`P2PNetwork`."""

    def __init__(
        self,
        base: P2PNetwork,
        fanout: int = 4,
        seed: int | None = None,
    ):
        self.node_id = base.node_id
        self._base = base
        self._fanout = fanout
        self._seed = seed
        self._handler: MessageHandler | None = None
        self._seen: OrderedDict[bytes, None] = OrderedDict()
        self._counter = itertools.count()
        # Computed lazily: the peer set may not be fully known at
        # construction time (e.g. an in-process hub still being populated).
        self._neighbor_cache: set[int] | None = None
        self._metrics = ChannelMetrics(base.node_id, "gossip")
        self._duplicates = _DUPLICATES.labels(str(base.node_id))
        base.set_handler(self._on_base_message)

    @property
    def _neighbors(self) -> set[int]:
        if self._neighbor_cache is None:
            all_ids = sorted([self.node_id, *self._base.peer_ids()])
            self._neighbor_cache = _overlay_neighbors(
                all_ids, self.node_id, self._fanout, self._seed
            )
        return self._neighbor_cache

    @property
    def neighbors(self) -> list[int]:
        return sorted(self._neighbors)

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def peer_ids(self) -> list[int]:
        return self._base.peer_ids()

    async def start(self) -> None:
        await self._base.start()

    async def stop(self) -> None:
        await self._base.stop()

    # -- sending ---------------------------------------------------------------

    def _envelope(self, recipient: int, payload: bytes) -> bytes:
        unique = (
            encode_int(self.node_id)
            + encode_int(next(self._counter))
            + encode_int(recipient)
            + encode_bytes(payload)
        )
        message_id = hashlib.sha256(unique).digest()[:16]
        self._remember(message_id)
        return encode_bytes(message_id) + unique

    async def send(self, recipient: int, data: bytes) -> None:
        await self._flood(self._envelope(recipient, data), exclude=None)

    async def broadcast(self, data: bytes) -> None:
        await self._flood(self._envelope(_BROADCAST, data), exclude=None)

    async def _flood(self, envelope: bytes, exclude: int | None) -> None:
        for neighbor in self._neighbors:
            if neighbor != exclude:
                with self._metrics.time_send():
                    await self._base.send(neighbor, envelope)
                self._metrics.sent(len(envelope))

    # -- receiving ----------------------------------------------------------------

    def _remember(self, message_id: bytes) -> bool:
        """Record the id; returns False if it was already known."""
        if message_id in self._seen:
            return False
        self._seen[message_id] = None
        while len(self._seen) > _SEEN_CACHE:
            self._seen.popitem(last=False)
        return True

    async def _on_base_message(self, link_sender: int, envelope: bytes) -> None:
        reader = Reader(envelope)
        message_id = reader.read_bytes()
        origin = reader.read_int()
        reader.read_int()  # per-origin counter (already inside message_id)
        recipient = reader.read_int()
        payload = reader.read_bytes()
        reader.finish()
        if not self._remember(message_id):
            self._duplicates.inc()
            return
        await self._flood(envelope, exclude=link_sender)
        is_for_us = recipient in (_BROADCAST, self.node_id)
        if is_for_us and origin != self.node_id and self._handler is not None:
            self._metrics.received(len(payload))
            await self._handler(origin, payload)


def _overlay_neighbors(
    all_ids: list[int], node_id: int, fanout: int, seed: int | None
) -> set[int]:
    """Ring neighbours + deterministic random shortcuts (connected overlay)."""
    others = [i for i in all_ids if i != node_id]
    if len(others) <= fanout:
        return set(others)
    index = all_ids.index(node_id)
    ring = {
        all_ids[(index - 1) % len(all_ids)],
        all_ids[(index + 1) % len(all_ids)],
    }
    ring.discard(node_id)
    rng = random.Random(seed if seed is not None else 0xC0FFEE ^ node_id)
    candidates = [i for i in others if i not in ring]
    shortcuts = rng.sample(candidates, min(fanout - len(ring), len(candidates)))
    return ring | set(shortcuts)
