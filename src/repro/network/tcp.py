"""Asyncio TCP full-mesh transport for real multi-process deployments.

Frames are length-prefixed; each outgoing connection starts with a handshake
frame carrying the dialer's node id.  Connections are established lazily and
re-dialed with backoff, so node start order does not matter.
"""

from __future__ import annotations

import asyncio
import logging

from ..errors import NetworkError
from ..telemetry import ChannelMetrics
from .interfaces import MessageHandler, P2PNetwork

logger = logging.getLogger(__name__)

_LEN_BYTES = 4
_MAX_FRAME = 64 * 1024 * 1024
_DIAL_RETRIES = 30
_DIAL_BACKOFF = 0.2


async def _write_frame(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(len(data).to_bytes(_LEN_BYTES, "big") + data)
    await writer.drain()


async def _read_frame(reader: asyncio.StreamReader) -> bytes:
    header = await reader.readexactly(_LEN_BYTES)
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise NetworkError(f"frame of {length} bytes exceeds limit")
    return await reader.readexactly(length)


class TcpP2P(P2PNetwork):
    """Full-mesh TCP transport: one listener plus one dialed link per peer."""

    def __init__(
        self,
        node_id: int,
        listen_host: str,
        listen_port: int,
        peers: dict[int, tuple[str, int]],
    ):
        self.node_id = node_id
        self._listen_host = listen_host
        self._listen_port = listen_port
        self._peers = dict(peers)
        self._handler: MessageHandler | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._dial_locks: dict[int, asyncio.Lock] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        self._metrics = ChannelMetrics(node_id, "tcp")

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def peer_ids(self) -> list[int]:
        return sorted(self._peers)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self._listen_host, self._listen_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in self._writers.values():
            writer.close()
        for task in list(self._reader_tasks):
            task.cancel()
        self._writers.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            handshake = await _read_frame(reader)
            sender = int.from_bytes(handshake, "big")
        except (asyncio.IncompleteReadError, NetworkError):
            writer.close()
            return
        task = asyncio.get_running_loop().create_task(
            self._read_loop(sender, reader)
        )
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)

    async def _read_loop(self, sender: int, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                frame = await _read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            self._metrics.received(len(frame))
            if self._handler is not None:
                await self._handler(sender, frame)

    async def _writer_for(self, recipient: int) -> asyncio.StreamWriter:
        writer = self._writers.get(recipient)
        if writer is not None and not writer.is_closing():
            return writer
        lock = self._dial_locks.setdefault(recipient, asyncio.Lock())
        async with lock:
            writer = self._writers.get(recipient)
            if writer is not None and not writer.is_closing():
                return writer
            host, port = self._peers[recipient]
            last_error: Exception | None = None
            for attempt in range(_DIAL_RETRIES):
                try:
                    _, writer = await asyncio.open_connection(host, port)
                    break
                except OSError as exc:
                    last_error = exc
                    await asyncio.sleep(_DIAL_BACKOFF * (attempt + 1))
            else:
                raise NetworkError(
                    f"cannot reach node {recipient} at {host}:{port}: {last_error}"
                )
            await _write_frame(writer, self.node_id.to_bytes(4, "big"))
            self._writers[recipient] = writer
            return writer

    async def send(self, recipient: int, data: bytes) -> None:
        if recipient not in self._peers:
            raise NetworkError(f"unknown peer {recipient}")
        try:
            with self._metrics.time_send():
                writer = await self._writer_for(recipient)
                await _write_frame(writer, data)
            self._metrics.sent(len(data))
        except (ConnectionError, NetworkError) as exc:
            # Reliable channels are an assumption of the model (§3.2); a
            # dead peer is logged, the protocol tolerates up to t of them.
            logger.warning("send to node %d failed: %s", recipient, exc)
            self._writers.pop(recipient, None)

    async def broadcast(self, data: bytes) -> None:
        await asyncio.gather(
            *(self.send(peer, data) for peer in self.peer_ids())
        )
