"""Asyncio TCP full-mesh transport for real multi-process deployments.

Frames are length-prefixed; each outgoing connection starts with a handshake
frame carrying the dialer's node id.  Connections are established lazily and
re-dialed with exponential backoff plus jitter, so node start order does not
matter and simultaneous re-dial storms decorrelate.

Reliability (§3.2 assumes reliable channels, so the transport has to earn
them): every send runs under a deadline; a send that fails — connection
refused, peer restarting, deadline exceeded — is pushed onto a bounded
per-peer resend queue and retried by a background flusher until the peer
returns or the transport stops.  Failures and retry outcomes are counted
(``repro_net_send_failures``, ``repro_net_resends_total``) so drops are
visible instead of silent.
"""

from __future__ import annotations

import asyncio
import logging
import random
from collections import deque

from ..errors import NetworkError
from ..telemetry import ChannelMetrics, counter
from .interfaces import MessageHandler, P2PNetwork

logger = logging.getLogger(__name__)

_LEN_BYTES = 4
_MAX_FRAME = 64 * 1024 * 1024

#: Defaults for the dial/retry machinery (overridable per instance).
DIAL_RETRIES = 8
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0
SEND_DEADLINE = 10.0
RESEND_LIMIT = 256

_SEND_FAILURES = counter(
    "repro_net_send_failures",
    "TCP sends that failed and were routed to the resend queue.",
    ("node",),
)
_RESENDS = counter(
    "repro_net_resends_total",
    "Resend-queue outcomes: delivered after retry, or dropped (queue "
    "overflow / transport stopped).",
    ("node", "outcome"),
)


def backoff_delay(
    attempt: int,
    rng: random.Random,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> float:
    """Exponential backoff with jitter: uniform in [d/2, d], d = base·2^k ≤ cap.

    The half-open jitter window keeps retries spread out (no thundering
    herd when n nodes lose the same peer) while preserving the exponential
    envelope the regression tests pin down.
    """
    ceiling = min(cap, base * (2**attempt))
    return ceiling * (0.5 + 0.5 * rng.random())


class TcpP2P(P2PNetwork):
    """Full-mesh TCP transport: one listener plus one dialed link per peer."""

    def __init__(
        self,
        node_id: int,
        listen_host: str,
        listen_port: int,
        peers: dict[int, tuple[str, int]],
        dial_retries: int = DIAL_RETRIES,
        backoff_base: float = BACKOFF_BASE,
        backoff_cap: float = BACKOFF_CAP,
        send_deadline: float = SEND_DEADLINE,
        resend_limit: int = RESEND_LIMIT,
    ):
        self.node_id = node_id
        self._listen_host = listen_host
        self._listen_port = listen_port
        self._peers = dict(peers)
        self._dial_retries = dial_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._send_deadline = send_deadline
        self._resend_limit = resend_limit
        self._handler: MessageHandler | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._dial_locks: dict[int, asyncio.Lock] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        self._accepted_writers: set[asyncio.StreamWriter] = set()
        self._resend_queues: dict[int, deque[bytes]] = {}
        self._flush_tasks: dict[int, asyncio.Task] = {}
        self._stopped = False
        self._rng = random.Random()
        self._metrics = ChannelMetrics(node_id, "tcp")
        node = str(node_id)
        self._send_failures = _SEND_FAILURES.labels(node)
        self._resent_delivered = _RESENDS.labels(node, "delivered")
        self._resent_dropped = _RESENDS.labels(node, "dropped")

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def peer_ids(self) -> list[int]:
        return sorted(self._peers)

    async def start(self) -> None:
        self._stopped = False
        self._server = await asyncio.start_server(
            self._on_connection, self._listen_host, self._listen_port
        )

    async def stop(self) -> None:
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._flush_tasks.values()):
            task.cancel()
        if self._flush_tasks:
            await asyncio.gather(
                *self._flush_tasks.values(), return_exceptions=True
            )
        self._flush_tasks.clear()
        for queue in self._resend_queues.values():
            for _ in queue:
                self._resent_dropped.inc()
        self._resend_queues.clear()
        for writer in self._writers.values():
            writer.close()
        # Also sever accepted inbound connections: a stopped node must not
        # keep silently absorbing frames from peers that still hold an
        # established socket to it.
        for writer in list(self._accepted_writers):
            writer.close()
        self._accepted_writers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
        self._writers.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            handshake = await _read_frame(reader)
            sender = int.from_bytes(handshake, "big")
        except (asyncio.IncompleteReadError, NetworkError):
            writer.close()
            return
        self._accepted_writers.add(writer)
        task = asyncio.get_running_loop().create_task(
            self._read_loop(sender, reader)
        )
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)
        task.add_done_callback(
            lambda _t, writer=writer: self._accepted_writers.discard(writer)
        )

    async def _read_loop(self, sender: int, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                frame = await _read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            self._metrics.received(len(frame))
            if self._handler is not None:
                await self._handler(sender, frame)

    async def _writer_for(self, recipient: int) -> asyncio.StreamWriter:
        writer = self._writers.get(recipient)
        if writer is not None and not writer.is_closing():
            return writer
        lock = self._dial_locks.setdefault(recipient, asyncio.Lock())
        async with lock:
            writer = self._writers.get(recipient)
            if writer is not None and not writer.is_closing():
                return writer
            host, port = self._peers[recipient]
            last_error: Exception | None = None
            for attempt in range(self._dial_retries):
                try:
                    _, writer = await asyncio.open_connection(host, port)
                    break
                except OSError as exc:
                    last_error = exc
                    await asyncio.sleep(
                        backoff_delay(
                            attempt,
                            self._rng,
                            self._backoff_base,
                            self._backoff_cap,
                        )
                    )
            else:
                raise NetworkError(
                    f"cannot reach node {recipient} at {host}:{port}: {last_error}"
                )
            await _write_frame(writer, self.node_id.to_bytes(4, "big"))
            self._writers[recipient] = writer
            return writer

    async def _send_once(self, recipient: int, data: bytes) -> None:
        writer = await self._writer_for(recipient)
        await _write_frame(writer, data)

    async def send(self, recipient: int, data: bytes) -> None:
        if recipient not in self._peers:
            raise NetworkError(f"unknown peer {recipient}")
        try:
            with self._metrics.time_send():
                await asyncio.wait_for(
                    self._send_once(recipient, data), self._send_deadline
                )
            self._metrics.sent(len(data))
        except (ConnectionError, NetworkError, asyncio.TimeoutError) as exc:
            # The §3.2 model assumes reliable channels; a failed send is
            # therefore queued for retry, not dropped on the floor.
            logger.warning(
                "send to node %d failed (%s); queueing for resend",
                recipient,
                exc,
            )
            self._send_failures.inc()
            self._drop_writer(recipient)
            self._enqueue_resend(recipient, data)

    async def broadcast(self, data: bytes) -> None:
        await asyncio.gather(
            *(self.send(peer, data) for peer in self.peer_ids())
        )

    # -- resend machinery -----------------------------------------------------

    def _drop_writer(self, recipient: int) -> None:
        writer = self._writers.pop(recipient, None)
        if writer is not None:
            writer.close()

    def _enqueue_resend(self, recipient: int, data: bytes) -> None:
        if self._stopped:
            self._resent_dropped.inc()
            return
        queue = self._resend_queues.setdefault(recipient, deque())
        if len(queue) >= self._resend_limit:
            queue.popleft()  # bounded: shed the oldest frame, visibly
            self._resent_dropped.inc()
        queue.append(data)
        task = self._flush_tasks.get(recipient)
        if task is None or task.done():
            self._flush_tasks[recipient] = asyncio.get_running_loop().create_task(
                self._flush_loop(recipient)
            )

    async def _flush_loop(self, recipient: int) -> None:
        """Retry queued frames (FIFO) until the peer answers or we stop."""
        attempt = 0
        while not self._stopped:
            queue = self._resend_queues.get(recipient)
            if not queue:
                return
            try:
                await asyncio.wait_for(
                    self._send_once(recipient, queue[0]), self._send_deadline
                )
            except (ConnectionError, NetworkError, asyncio.TimeoutError, OSError):
                self._drop_writer(recipient)
                attempt += 1
                await asyncio.sleep(
                    backoff_delay(
                        attempt, self._rng, self._backoff_base, self._backoff_cap
                    )
                )
                continue
            frame = queue.popleft()
            attempt = 0
            self._metrics.sent(len(frame))
            self._resent_delivered.inc()


async def _write_frame(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(len(data).to_bytes(_LEN_BYTES, "big") + data)
    await writer.drain()


async def _read_frame(reader: asyncio.StreamReader) -> bytes:
    header = await reader.readexactly(_LEN_BYTES)
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise NetworkError(f"frame of {length} bytes exceeds limit")
    return await reader.readexactly(length)
