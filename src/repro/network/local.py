"""In-process transport: N nodes inside one asyncio loop.

The :class:`LocalHub` connects any number of :class:`LocalP2P` endpoints and
can inject per-link latency through a ``latency(src, dst) -> seconds``
function, which lets integration tests reproduce the paper's local
(≈0.65 ms RTT) and global (≈100/43 ms RTT) deployments without leaving one
process.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from ..errors import NetworkError
from ..telemetry import ChannelMetrics
from .interfaces import MessageHandler, P2PNetwork

LatencyFn = Callable[[int, int], float]


class LocalHub:
    """Shared medium connecting local endpoints."""

    def __init__(self, latency: LatencyFn | None = None):
        self._endpoints: dict[int, "LocalP2P"] = {}
        self._latency = latency
        self._tasks: set[asyncio.Task] = set()
        self.dropped_links: set[tuple[int, int]] = set()

    def endpoint(self, node_id: int) -> "LocalP2P":
        """Create (or fetch) the endpoint for ``node_id``."""
        if node_id not in self._endpoints:
            self._endpoints[node_id] = LocalP2P(self, node_id)
        return self._endpoints[node_id]

    def node_ids(self) -> list[int]:
        return sorted(self._endpoints)

    def drop_link(self, src: int, dst: int) -> None:
        """Fault injection: silently drop messages src → dst."""
        self.dropped_links.add((src, dst))

    def restore_link(self, src: int, dst: int) -> None:
        self.dropped_links.discard((src, dst))

    def _deliver(self, src: int, dst: int, data: bytes) -> None:
        if (src, dst) in self.dropped_links:
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            raise NetworkError(f"no endpoint for node {dst}")
        delay = self._latency(src, dst) if self._latency else 0.0
        task = asyncio.get_running_loop().create_task(
            endpoint._receive_after(delay, src, data)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def drain(self) -> None:
        """Wait until all in-flight deliveries completed (test helper)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)


class LocalP2P(P2PNetwork):
    """One node's view of the hub."""

    def __init__(self, hub: LocalHub, node_id: int):
        self.node_id = node_id
        self._hub = hub
        self._handler: MessageHandler | None = None
        self._metrics = ChannelMetrics(node_id, "local")

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def peer_ids(self) -> list[int]:
        return [i for i in self._hub.node_ids() if i != self.node_id]

    async def send(self, recipient: int, data: bytes) -> None:
        if recipient == self.node_id:
            raise NetworkError("self-send is not a network operation")
        with self._metrics.time_send():
            self._hub._deliver(self.node_id, recipient, data)
        self._metrics.sent(len(data))

    async def broadcast(self, data: bytes) -> None:
        for peer in self.peer_ids():
            with self._metrics.time_send():
                self._hub._deliver(self.node_id, peer, data)
            self._metrics.sent(len(data))

    async def _receive_after(self, delay: float, sender: int, data: bytes) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        self._metrics.received(len(data))
        if self._handler is not None:
            await self._handler(sender, data)
