"""The network manager module: wires transports to the core layer.

"A network manager module sets up the needed components based on the
configuration provided at start-up" (§3.6).  The manager multiplexes one
underlying transport into tagged channels (protocol traffic, TOB internal
traffic), optionally inserts the gossip overlay, and exposes exactly one
operation to the core layer: dispatch a :class:`ProtocolMessage` over the
channel the protocol requested.
"""

from __future__ import annotations

import logging
from typing import Awaitable, Callable

from ..core.messages import Channel, ProtocolMessage
from ..errors import ConfigurationError, NetworkError
from ..telemetry import counter

logger = logging.getLogger(__name__)
from .gossip import GossipOverlay
from .interfaces import MessageHandler, P2PNetwork, TotalOrderBroadcast
from .tob import SequencerTob

# Logical protocol-message accounting, one level above the transports
# (which count wire frames/bytes): what the core handed down and what the
# core received back, per requested channel.
_DISPATCHED = counter(
    "repro_network_dispatch_total",
    "Protocol messages dispatched by the core, per requested channel.",
    ("node", "channel"),
)
_DELIVERED = counter(
    "repro_network_delivered_total",
    "Protocol messages delivered up to the core layer.",
    ("node",),
)
_DECODE_FAILURES = counter(
    "repro_network_decode_failures_total",
    "Inbound frames dropped because they failed to decode (corrupted or "
    "malformed protocol messages from byzantine peers).",
    ("node",),
)

_TAG_PROTOCOL = 0x01
_TAG_TOB = 0x02

ProtocolHandler = Callable[[ProtocolMessage], Awaitable[None]]


class _ChannelTransport(P2PNetwork):
    """One tagged channel of a multiplexed transport."""

    def __init__(self, mux: "_Multiplexer", tag: int):
        self._mux = mux
        self._tag = tag
        self.node_id = mux.base.node_id

    def set_handler(self, handler: MessageHandler) -> None:
        self._mux.handlers[self._tag] = handler

    def peer_ids(self) -> list[int]:
        return self._mux.base.peer_ids()

    async def send(self, recipient: int, data: bytes) -> None:
        await self._mux.base.send(recipient, bytes([self._tag]) + data)

    async def broadcast(self, data: bytes) -> None:
        await self._mux.base.broadcast(bytes([self._tag]) + data)

    async def start(self) -> None:  # lifecycle owned by the multiplexer
        return

    async def stop(self) -> None:
        return


class _Multiplexer:
    """Splits one transport into tag-addressed channels."""

    def __init__(self, base: P2PNetwork):
        self.base = base
        self.handlers: dict[int, MessageHandler] = {}
        base.set_handler(self._dispatch)

    def channel(self, tag: int) -> _ChannelTransport:
        return _ChannelTransport(self, tag)

    async def _dispatch(self, sender: int, data: bytes) -> None:
        if not data:
            raise NetworkError("empty frame")
        handler = self.handlers.get(data[0])
        if handler is not None:
            await handler(sender, data[1:])


class NetworkManager:
    """Per-node facade over P2P and (optional) TOB communication."""

    def __init__(
        self,
        transport: P2PNetwork,
        enable_tob: bool = False,
        sequencer_id: int = 1,
        tob_block_interval: float = 0.0,
        gossip_fanout: int | None = None,
        tob: TotalOrderBroadcast | None = None,
    ):
        if gossip_fanout is not None:
            transport = GossipOverlay(transport, fanout=gossip_fanout)
        self._transport = transport
        self.node_id = transport.node_id
        self._mux = _Multiplexer(transport)
        self._p2p = self._mux.channel(_TAG_PROTOCOL)
        if tob is not None:
            # An externally provided TOB (e.g. a proxy to a host platform).
            self._tob: TotalOrderBroadcast | None = tob
            self._owns_tob_transport = False
        elif enable_tob:
            self._tob = SequencerTob(
                self._mux.channel(_TAG_TOB),
                sequencer_id=sequencer_id,
                block_interval=tob_block_interval,
            )
            self._owns_tob_transport = True
        else:
            self._tob = None
            self._owns_tob_transport = False
        self._handler: ProtocolHandler | None = None
        self._dispatched_p2p = _DISPATCHED.labels(str(self.node_id), "p2p")
        self._dispatched_tob = _DISPATCHED.labels(str(self.node_id), "tob")
        self._delivered = _DELIVERED.labels(str(self.node_id))
        self._decode_failures = _DECODE_FAILURES.labels(str(self.node_id))
        self._p2p.set_handler(self._on_p2p)
        if self._tob is not None:
            self._tob.set_handler(self._on_tob)

    @property
    def has_tob(self) -> bool:
        return self._tob is not None

    def peer_ids(self) -> list[int]:
        return self._transport.peer_ids()

    def set_protocol_handler(self, handler: ProtocolHandler) -> None:
        self._handler = handler

    async def start(self) -> None:
        await self._transport.start()
        if self._tob is not None and not self._owns_tob_transport:
            await self._tob.start()

    async def stop(self) -> None:
        if self._tob is not None and not self._owns_tob_transport:
            await self._tob.stop()
        await self._transport.stop()

    # -- outgoing ------------------------------------------------------------

    async def dispatch(self, message: ProtocolMessage) -> None:
        """Send a protocol message over its requested channel."""
        data = message.to_bytes()
        if message.channel is Channel.TOB:
            if self._tob is None:
                raise ConfigurationError(
                    "protocol requested TOB but the node has no TOB channel"
                )
            self._dispatched_tob.inc()
            await self._tob.submit(data)
        elif message.is_directed():
            self._dispatched_p2p.inc()
            await self._p2p.send(message.recipient, data)
        else:
            self._dispatched_p2p.inc()
            await self._p2p.broadcast(data)

    # -- incoming -----------------------------------------------------------------

    async def _on_p2p(self, sender: int, data: bytes) -> None:
        message = self._decode(sender, data)
        if message is not None:
            await self._deliver(message)

    async def _on_tob(self, sender: int, data: bytes) -> None:
        message = self._decode(sender, data)
        if message is not None:
            await self._deliver(message)

    def _decode(self, sender: int, data: bytes) -> ProtocolMessage | None:
        """Decode a frame, dropping (not crashing on) undecodable ones.

        A byzantine peer can put arbitrary bytes on the wire; a parse error
        must cost the receiver one counter increment, not an exception that
        unwinds the transport's read loop.
        """
        try:
            return ProtocolMessage.from_bytes(data)
        except Exception:  # noqa: BLE001 - arbitrary bytes fail arbitrarily
            logger.warning("dropping undecodable frame from node %d", sender)
            self._decode_failures.inc()
            return None

    async def _deliver(self, message: ProtocolMessage) -> None:
        if message.is_directed() and message.recipient != self.node_id:
            return  # directed message flooded through an overlay
        self._delivered.inc()
        if self._handler is not None:
            await self._handler(message)
