"""Disk-backed keystore: key shares that survive process death.

Layered on the existing :mod:`repro.schemes.keystore` serialization (the
same self-contained ``scheme | public | id | secret`` share encoding the
trusted dealer ships between machines), wrapped in the
:mod:`repro.storage.atomic` integrity container and replaced atomically on
every mutation.  Keystores are small (a handful of shares per node), so
rewrite-on-mutation is both the simplest and the safest policy: the file on
disk is always a complete, CRC-verified snapshot.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import KeyManagementError
from ..schemes.keystore import keystore_from_json, keystore_to_json
from .atomic import read_versioned, write_versioned

#: Container version of the on-disk keystore snapshot.
KEYSTORE_VERSION = 1


class DurableKeystore:
    """Crash-safe ``{key_id: (scheme, key_share)}`` store for one node."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._entries: dict[str, tuple[str, object]] = {}
        if self.path.exists():
            _, payload = read_versioned(self.path, KEYSTORE_VERSION)
            self._entries = keystore_from_json(payload.decode("utf-8"))

    # -- mutation (each call persists before returning) ------------------------

    def put(self, key_id: str, scheme: str, key_share: object) -> None:
        self._entries[key_id] = (scheme, key_share)
        self._flush()

    def remove(self, key_id: str) -> None:
        if key_id not in self._entries:
            raise KeyManagementError(f"unknown key id {key_id!r}")
        del self._entries[key_id]
        self._flush()

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = keystore_to_json(self._entries).encode("utf-8")
        write_versioned(self.path, payload, KEYSTORE_VERSION)

    # -- read ------------------------------------------------------------------

    def items(self) -> list[tuple[str, str, object]]:
        """``(key_id, scheme, key_share)`` triples, sorted by key id."""
        return [
            (key_id, scheme, share)
            for key_id, (scheme, share) in sorted(self._entries.items())
        ]

    def __contains__(self, key_id: str) -> bool:
        return key_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)
