"""Append-only, segmented write-ahead journal with per-record checksums.

Frame layout (big-endian)::

    length (4) | crc32 (4) | payload (length)

Records are JSON documents (small lifecycle events, not bulk data).  The
journal is split into numbered segment files (``wal-00000001.log`` ...);
appends go to the highest-numbered segment and roll to a fresh one once it
exceeds ``segment_max_bytes``, so replay cost and torn-tail repair stay
bounded by one segment.

Crash semantics — the property the recovery path leans on:

* every append is flushed and fsynced before it returns, so an
  acknowledged record survives ``kill -9``;
* a crash *during* an append can leave a **torn final record** (partial
  header or payload at the tail of the last segment).  Replay tolerates
  exactly that: it stops at the tear and the tail is truncated away before
  the next append.
* a record whose frame is fully present but whose CRC fails — or a
  truncated segment with more segments after it — is **corruption**, not a
  tear, and raises :class:`~repro.errors.WalCorruptionError`; recovery must
  not silently skip over damaged history.
"""

from __future__ import annotations

import io
import json
import os
import re
import zlib
from pathlib import Path
from typing import Iterator

from ..errors import StorageError, WalCorruptionError
from .atomic import fsync_directory

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")
_FRAME_HEADER = 8

#: Per-record payload sanity bound; journal records are small JSON events,
#: so a larger declared length is either a tear or corruption.
MAX_RECORD_BYTES = 1 << 24


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.log"


class _ScanResult:
    """Outcome of scanning one segment: records plus how the tail ended."""

    __slots__ = ("records", "valid_bytes", "torn", "corrupt_at")

    def __init__(self) -> None:
        self.records: list[bytes] = []
        self.valid_bytes = 0
        self.torn = False
        self.corrupt_at: int | None = None


def _scan_segment(data: bytes) -> _ScanResult:
    """Walk the frames of one segment, classifying how it terminates."""
    result = _ScanResult()
    offset = 0
    total = len(data)
    while offset < total:
        header = data[offset : offset + _FRAME_HEADER]
        if len(header) < _FRAME_HEADER:
            result.torn = True  # partial header: crash mid-append
            return result
        length = int.from_bytes(header[:4], "big")
        crc = int.from_bytes(header[4:8], "big")
        if length > MAX_RECORD_BYTES:
            # A garbage length field cannot be distinguished from a tear by
            # size alone; treat it as torn iff nothing follows the frame
            # header (classified by the caller via ``corrupt_at``).
            result.corrupt_at = offset
            return result
        payload = data[offset + _FRAME_HEADER : offset + _FRAME_HEADER + length]
        if len(payload) < length:
            result.torn = True  # payload cut short: crash mid-append
            return result
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            result.corrupt_at = offset
            return result
        result.records.append(payload)
        offset += _FRAME_HEADER + length
        result.valid_bytes = offset
    return result


class WriteAheadLog:
    """One node's durable, replayable event journal."""

    def __init__(
        self,
        directory: Path | str,
        segment_max_bytes: int = 1 << 20,
        sync: bool = True,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_max = segment_max_bytes
        self._sync = sync
        self._handle: io.BufferedWriter | None = None
        self._active_index = 0

    # -- segment bookkeeping ---------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment files in append order."""
        found = []
        for entry in self.directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    def _open_for_append(self) -> io.BufferedWriter:
        if self._handle is not None:
            return self._handle
        segments = self.segments()
        if segments:
            last = segments[-1]
            self._active_index = int(_SEGMENT_RE.match(last.name).group(1))
            self._repair_tail(last, final=True)
            self._handle = open(last, "ab")
        else:
            self._active_index = 1
            path = self.directory / _segment_name(1)
            self._handle = open(path, "ab")
            fsync_directory(self.directory)
        return self._handle

    def _repair_tail(self, segment: Path, final: bool) -> _ScanResult:
        """Scan one segment; truncate a torn tail, refuse corruption."""
        data = segment.read_bytes()
        result = _scan_segment(data)
        if result.corrupt_at is not None:
            raise WalCorruptionError(
                f"{segment}: corrupt record at byte {result.corrupt_at}"
            )
        if result.torn:
            if not final:
                raise WalCorruptionError(
                    f"{segment}: truncated record but later segments exist"
                )
            with open(segment, "r+b") as handle:
                handle.truncate(result.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return result

    def _roll(self) -> None:
        assert self._handle is not None
        self._handle.close()
        self._active_index += 1
        self._handle = open(
            self.directory / _segment_name(self._active_index), "ab"
        )
        fsync_directory(self.directory)

    # -- append/replay ---------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one JSON record (fsynced before returning)."""
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = (
            len(payload).to_bytes(4, "big")
            + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
            + payload
        )
        handle = self._open_for_append()
        try:
            handle.write(frame)
            handle.flush()
            if self._sync:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(f"journal append failed: {exc}") from exc
        if handle.tell() >= self._segment_max:
            self._roll()

    def replay(self) -> Iterator[dict]:
        """Yield every intact record in order.

        Stops silently at a torn final record (crash during the last
        append); raises :class:`WalCorruptionError` for damage anywhere
        else.  Records that fail to parse as JSON count as corruption too.
        """
        segments = self.segments()
        for position, segment in enumerate(segments):
            data = segment.read_bytes()
            result = _scan_segment(data)
            if result.corrupt_at is not None:
                raise WalCorruptionError(
                    f"{segment}: corrupt record at byte {result.corrupt_at}"
                )
            if result.torn and position != len(segments) - 1:
                raise WalCorruptionError(
                    f"{segment}: truncated record but later segments exist"
                )
            for payload in result.records:
                try:
                    yield json.loads(payload)
                except ValueError as exc:
                    raise WalCorruptionError(
                        f"{segment}: record is not valid JSON: {exc}"
                    ) from exc

    def reset(self) -> None:
        """Drop every record (post-recovery compaction: history that has
        been folded into snapshots must not be replayed twice)."""
        self.close()
        for segment in self.segments():
            segment.unlink()
        fsync_directory(self.directory)
        self._active_index = 0

    def sync(self) -> None:
        """Flush + fsync the active segment (graceful-shutdown hook)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
