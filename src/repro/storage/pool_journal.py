"""Durable consume-once journal for the precompute pipeline.

The precompute pool (``repro.core.orchestration.precompute``) serves each
staged entry at most once — across process lives.  This journal gives the
pool that guarantee on top of the segmented :class:`WriteAheadLog`:

* ``stage`` appends the entry (payload included for durable entries)
  before it becomes visible in the pool;
* ``consume`` appends — and fsyncs — the consumption record *before* the
  payload is handed to a protocol instance, so a crash at any later point
  replays as "already consumed" and the entry is never re-served;
* volatile entries (FROST nonce material, whose secrecy forbids resting
  on disk) are journaled without a payload and dropped on replay — a
  restart cannot double-use what it cannot restore.

Replay compacts the log: surviving entries are folded into a fresh
segment so consumed history does not accumulate across restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..serialization import hexlify, unhexlify
from .wal import WriteAheadLog


@dataclass(frozen=True)
class StagedEntry:
    """One pool entry as the journal knows it."""

    seq: int
    instance_id: str
    key_id: str
    op: str
    payload: bytes | None  # None = volatile (never restored after a restart)


class PoolJournal:
    """WAL-backed staged/consumed ledger for one node's precompute pool."""

    def __init__(self, directory: Path | str):
        self._wal = WriteAheadLog(directory)
        self._next_seq = 1
        self._survivors: list[StagedEntry] = []
        self._load()

    def _load(self) -> None:
        staged: dict[int, StagedEntry] = {}
        top = 0
        for record in self._wal.replay():
            seq = int(record.get("seq", 0))
            top = max(top, seq)
            event = record.get("event")
            if event == "staged":
                payload = record.get("payload")
                staged[seq] = StagedEntry(
                    seq,
                    record.get("id", ""),
                    record.get("key", ""),
                    record.get("op", ""),
                    unhexlify(payload) if payload is not None else None,
                )
            elif event == "consumed":
                staged.pop(seq, None)
        self._next_seq = top + 1
        self._survivors = [
            entry
            for seq, entry in sorted(staged.items())
            if entry.payload is not None
        ]
        # Compact: re-seat the survivors in a fresh log so the next replay
        # starts from exactly the restorable state, not the whole history.
        self._wal.reset()
        for entry in self._survivors:
            self._wal.append(
                {
                    "event": "staged",
                    "seq": entry.seq,
                    "id": entry.instance_id,
                    "key": entry.key_id,
                    "op": entry.op,
                    "payload": hexlify(entry.payload),
                }
            )

    @property
    def survivors(self) -> list[StagedEntry]:
        """Entries that were staged-but-unconsumed when the journal opened."""
        return list(self._survivors)

    def stage(
        self,
        instance_id: str,
        key_id: str,
        op: str,
        payload: bytes | None,
    ) -> int:
        """Record a newly staged entry; returns its consume sequence."""
        seq = self._next_seq
        self._next_seq += 1
        record = {
            "event": "staged",
            "seq": seq,
            "id": instance_id,
            "key": key_id,
            "op": op,
        }
        if payload is not None:
            record["payload"] = hexlify(payload)
        self._wal.append(record)
        return seq

    def consume(self, seq: int) -> None:
        """Record a consumption durably, *before* the entry is served."""
        self._wal.append({"event": "consumed", "seq": seq})

    def close(self) -> None:
        self._wal.close()
