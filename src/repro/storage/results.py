"""Durable idempotent-result cache.

Thetacrypt derives instance ids deterministically from request content
(:func:`repro.service.node.derive_instance_id`), which makes every protocol
request naturally idempotent — *within* one process lifetime.  This cache
extends that guarantee across restarts: finalized results are appended to a
write-ahead log keyed by instance id, and a duplicate request arriving
after a crash is answered from the cache instead of re-running (and
possibly re-failing) the threshold protocol.

The log is compacted on load once the replayed history grows past twice
``max_entries``: the surviving newest entries are rewritten into a fresh
segment so disk usage and replay cost stay bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

from ..serialization import hexlify, unhexlify
from .wal import WriteAheadLog


class DurableResultCache:
    """Append-only ``instance_id -> (scheme, result)`` store."""

    def __init__(self, directory: Path | str, max_entries: int = 4096):
        self._max_entries = max_entries
        self._wal = WriteAheadLog(directory)
        self._entries: OrderedDict[str, tuple[str, bytes]] = OrderedDict()
        replayed = 0
        for record in self._wal.replay():
            replayed += 1
            instance_id = record.get("id")
            if not instance_id:
                continue
            self._entries[instance_id] = (
                record.get("scheme", ""),
                unhexlify(record.get("result", "")),
            )
            self._entries.move_to_end(instance_id)
        self._trim()
        if replayed > 2 * max_entries:
            self._compact()

    def put(self, instance_id: str, scheme: str, result: bytes) -> None:
        """Persist one finalized result (fsynced before returning)."""
        self._wal.append(
            {"id": instance_id, "scheme": scheme, "result": hexlify(result)}
        )
        self._entries[instance_id] = (scheme, result)
        self._entries.move_to_end(instance_id)
        self._trim()

    def get(self, instance_id: str) -> tuple[str, bytes] | None:
        return self._entries.get(instance_id)

    def items(self) -> list[tuple[str, str, bytes]]:
        """``(instance_id, scheme, result)`` in insertion (oldest-first) order."""
        return [
            (instance_id, scheme, result)
            for instance_id, (scheme, result) in self._entries.items()
        ]

    def _trim(self) -> None:
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def _compact(self) -> None:
        self._wal.reset()
        for instance_id, (scheme, result) in self._entries.items():
            self._wal.append(
                {"id": instance_id, "scheme": scheme, "result": hexlify(result)}
            )

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        self._wal.close()
