"""Durable node state: atomic snapshots, write-ahead journal, keystore,
and the idempotent-result cache (docs/robustness.md, "Durability &
recovery").

Everything under ``NodeConfig.data_dir`` flows through this package::

    data_dir/
      keystore.bin   # CRC-checked snapshot of this node's key shares
      journal/       # segmented WAL of instance lifecycle events
      results/       # segmented WAL backing the idempotent-result cache
"""

from .atomic import (
    atomic_write_bytes,
    fsync_directory,
    pack_record,
    read_versioned,
    unpack_record,
    write_versioned,
)
from .durable_keystore import DurableKeystore
from .pool_journal import PoolJournal, StagedEntry
from .results import DurableResultCache
from .wal import WriteAheadLog

__all__ = [
    "DurableKeystore",
    "DurableResultCache",
    "PoolJournal",
    "StagedEntry",
    "WriteAheadLog",
    "atomic_write_bytes",
    "fsync_directory",
    "pack_record",
    "read_versioned",
    "unpack_record",
    "write_versioned",
]
