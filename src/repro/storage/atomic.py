"""Atomic, integrity-checked file persistence.

The crash-safety building block of the durability subsystem: a writer that
either leaves the previous file contents fully intact or replaces them with
the complete new contents (never a torn mix), and a small versioned
container format with a CRC32 so a reader can tell a valid snapshot from a
damaged one.

Container layout (all integers big-endian)::

    magic (4)  "RPRO"
    version (2)
    crc32 (4)   of the payload
    length (4)  of the payload
    payload (length)

The atomic replace is the POSIX recipe: write to a temporary file in the
*same directory*, flush + fsync the file, ``os.replace`` over the target,
then fsync the directory so the rename itself survives power loss.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

from ..errors import StorageError

MAGIC = b"RPRO"
_HEADER_LEN = len(MAGIC) + 2 + 4 + 4


def fsync_directory(directory: Path | str) -> None:
    """fsync a directory so a rename/creation inside it is durable."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path | str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + replace)."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise StorageError(f"atomic write to {path} failed: {exc}") from exc
    finally:
        if tmp.exists():  # replace failed; don't leave the temp file behind
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
    fsync_directory(path.parent)


def pack_record(payload: bytes, version: int = 1) -> bytes:
    """Wrap ``payload`` in the magic/version/CRC32 container."""
    if not 0 <= version <= 0xFFFF:
        raise StorageError(f"version {version} outside u16 range")
    return (
        MAGIC
        + version.to_bytes(2, "big")
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
        + len(payload).to_bytes(4, "big")
        + payload
    )


def unpack_record(data: bytes, source: str = "<bytes>") -> tuple[int, bytes]:
    """Inverse of :func:`pack_record`; returns ``(version, payload)``.

    Raises :class:`StorageError` on a bad magic, a truncated container, or
    a CRC mismatch — the caller decides whether that is fatal.
    """
    if len(data) < _HEADER_LEN:
        raise StorageError(f"{source}: truncated container header")
    if data[:4] != MAGIC:
        raise StorageError(f"{source}: bad magic {data[:4]!r}")
    version = int.from_bytes(data[4:6], "big")
    crc = int.from_bytes(data[6:10], "big")
    length = int.from_bytes(data[10:14], "big")
    payload = data[_HEADER_LEN : _HEADER_LEN + length]
    if len(payload) != length:
        raise StorageError(
            f"{source}: payload truncated ({len(payload)}/{length} bytes)"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise StorageError(f"{source}: CRC32 mismatch")
    return version, payload


def write_versioned(path: Path | str, payload: bytes, version: int = 1) -> None:
    """Atomically persist ``payload`` inside the integrity container."""
    atomic_write_bytes(path, pack_record(payload, version))


def read_versioned(
    path: Path | str, expected_version: int | None = None
) -> tuple[int, bytes]:
    """Read and verify a container written by :func:`write_versioned`."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    version, payload = unpack_record(data, source=str(path))
    if expected_version is not None and version != expected_version:
        raise StorageError(
            f"{path}: version {version}, expected {expected_version}"
        )
    return version, payload
