"""Prime-order subgroup of edwards25519 (the curve behind Ed25519).

Implements the twisted Edwards curve ``-x² + y² = 1 + d·x²·y²`` over
``GF(2²⁵⁵ - 19)`` with extended homogeneous coordinates, RFC 8032 point
encoding, and a try-and-increment hash-to-curve that clears the cofactor.
The exported :class:`Ed25519Group` is the prime-order subgroup of order
``l = 2²⁵² + 27742317777372353535851937790883648493`` used by SG02, KG20
(FROST), and CKS05 in the paper (Table 3: "EC (Ed25519), 256 bit").
"""

from __future__ import annotations

import hashlib

from ..errors import SerializationError
from ..mathutils import backends as _mb
from ..mathutils.modular import batch_inverse
from .base import Group, GroupElement

P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, -1, P)) % P
_2D = (2 * D) % P
COFACTOR = 8

# Base point from RFC 8032.
_BASE_Y = 4 * pow(5, -1, P) % P
_SQRT_M1 = pow(2, (P - 1) // 4, P)


def _recover_x(y: int, sign: int) -> int | None:
    """Recover the x coordinate with the given sign bit, or None."""
    y2 = (y * y) % P
    u = (y2 - 1) % P
    v = (D * y2 + 1) % P
    # Candidate root x = u·v³·(u·v⁷)^((p-5)/8), the p = 5 (mod 8) shortcut.
    x = (u * pow(v, 3, P) * _mb.modexp(u * pow(v, 7, P), (P - 5) // 8, P)) % P
    vx2 = (v * x * x) % P
    if vx2 == (P - u) % P:
        x = (x * _SQRT_M1) % P
        vx2 = (v * x * x) % P
    if vx2 != u % P:
        return None
    if x == 0 and sign == 1:
        return None
    if x & 1 != sign:
        x = P - x
    return x


class Ed25519Element(GroupElement):
    """Point in extended coordinates (X : Y : Z : T) with T = XY/Z."""

    __slots__ = ("x", "y", "z", "t", "group")

    def __init__(self, group: "Ed25519Group", x: int, y: int, z: int, t: int):
        self.group = group
        self.x, self.y, self.z, self.t = x, y, z, t

    def __mul__(self, other: GroupElement) -> "Ed25519Element":
        if not isinstance(other, Ed25519Element):
            return NotImplemented
        # add-2008-hwcd-3 for a = -1.
        a = ((self.y - self.x) * (other.y - other.x)) % P
        b = ((self.y + self.x) * (other.y + other.x)) % P
        c = (self.t * _2D * other.t) % P
        d = (2 * self.z * other.z) % P
        e, f, g, h = (b - a) % P, (d - c) % P, (d + c) % P, (b + a) % P
        return Ed25519Element(self.group, (e * f) % P, (g * h) % P, (f * g) % P, (e * h) % P)

    def _double(self) -> "Ed25519Element":
        # dbl-2008-hwcd for a = -1.
        a = (self.x * self.x) % P
        b = (self.y * self.y) % P
        c = (2 * self.z * self.z) % P
        d = (-a) % P
        e = ((self.x + self.y) ** 2 - a - b) % P
        g = (d + b) % P
        f = (g - c) % P
        h = (d - b) % P
        return Ed25519Element(self.group, (e * f) % P, (g * h) % P, (f * g) % P, (e * h) % P)

    def double(self) -> "Ed25519Element":
        return self._double()

    def _mul_raw(self, scalar: int) -> "Ed25519Element":
        """Scalar multiplication without reduction mod L (cofactor math)."""
        result = self.group.identity()
        if scalar == 0:
            return result
        # Left-to-right binary ladder.
        for bit in bin(scalar)[2:]:
            result = result._double()
            if bit == "1":
                result = result * self
        return result

    def __pow__(self, scalar: int) -> "Ed25519Element":
        return self._mul_raw(scalar % L)

    def inverse(self) -> "Ed25519Element":
        return Ed25519Element(self.group, (-self.x) % P, self.y, self.z, (-self.t) % P)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ed25519Element):
            return NotImplemented
        return (
            (self.x * other.z - other.x * self.z) % P == 0
            and (self.y * other.z - other.y * self.z) % P == 0
        )

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def to_bytes(self) -> bytes:
        z_inv = _mb.modinv(self.z, P)
        x = (self.x * z_inv) % P
        y = (self.y * z_inv) % P
        encoded = y | ((x & 1) << 255)
        return encoded.to_bytes(32, "little")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Ed25519 {self.to_bytes().hex()[:16]}…>"


class Ed25519Group(Group):
    """The prime-order subgroup of edwards25519."""

    name = "ed25519"
    order = L
    key_bits = 256

    def __init__(self) -> None:
        base_x = _recover_x(_BASE_Y, 0)
        assert base_x is not None
        self._generator = Ed25519Element(
            self, base_x, _BASE_Y, 1, (base_x * _BASE_Y) % P
        )
        self._identity = Ed25519Element(self, 0, 1, 1, 0)

    def generator(self) -> Ed25519Element:
        return self._generator

    def identity(self) -> Ed25519Element:
        return self._identity

    def element_from_bytes(self, data: bytes) -> Ed25519Element:
        if len(data) != 32:
            raise SerializationError("ed25519 element must be 32 bytes")
        encoded = int.from_bytes(data, "little")
        sign = encoded >> 255
        y = encoded & ((1 << 255) - 1)
        if y >= P:
            raise SerializationError("ed25519 y coordinate out of range")
        x = _recover_x(y, sign)
        if x is None:
            raise SerializationError("ed25519 encoding is not on the curve")
        point = Ed25519Element(self, x, y, 1, (x * y) % P)
        if not point._mul_raw(L).is_identity():
            raise SerializationError("ed25519 point not in prime-order subgroup")
        return point

    raw_coords = 2

    def elements_to_raw(self, elements) -> list[tuple[int, ...]]:
        """Affine (x, y) pairs, all projective z's inverted in one batch."""
        inverses = iter(batch_inverse([e.z for e in elements], P))
        raw: list[tuple[int, ...]] = []
        for element in elements:
            z_inv = next(inverses)
            raw.append((element.x * z_inv % P, element.y * z_inv % P))
        return raw

    def element_from_raw(self, coords) -> Ed25519Element:
        x, y = coords
        if not (0 <= x < P and 0 <= y < P):
            raise SerializationError("ed25519 raw coordinate out of range")
        # Twisted Edwards equation: -x² + y² = 1 + d·x²·y² (mod p).
        x2, y2 = x * x % P, y * y % P
        if (y2 - x2 - 1 - D * x2 * y2) % P != 0:
            raise SerializationError("ed25519 raw point not on curve")
        return Ed25519Element(self, x, y, 1, x * y % P)

    def hash_to_element(self, data: bytes) -> Ed25519Element:
        """Try-and-increment onto the curve, then clear the cofactor."""
        counter = 0
        while True:
            digest = hashlib.sha512(
                b"repro-ed25519-h2c" + counter.to_bytes(4, "big") + data
            ).digest()
            y = int.from_bytes(digest[:32], "little") % P
            sign = digest[32] & 1
            x = _recover_x(y, sign)
            counter += 1
            if x is None:
                continue
            point = Ed25519Element(self, x, y, 1, (x * y) % P)
            cleared = point._mul_raw(COFACTOR)
            if not cleared.is_identity():
                return cleared


_GROUP = Ed25519Group()


def ed25519() -> Ed25519Group:
    """Return the shared Ed25519 group instance."""
    return _GROUP
