"""secp256k1 — a third curve backend, exercising the group abstraction.

The scheme layer is written against :class:`~repro.groups.base.Group` only,
so adding a curve makes every DL scheme (SG02, KG20, CKS05) available on it
with zero scheme-side changes — the extensibility §3.5 promises.  secp256k1
is the natural candidate: it is what Bitcoin/Ethereum wallets verify against.

Short Weierstrass y² = x³ + 7 over p = 2²⁵⁶ − 2³² − 977, prime order n,
cofactor 1.  Encoding: 33-byte SEC1 compressed points.
"""

from __future__ import annotations

import hashlib

from ..errors import SerializationError
from ..mathutils import backends as _mb
from ..mathutils.modular import batch_inverse, sqrt_mod_prime
from .base import Group, GroupElement

P = 2**256 - 2**32 - 977
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
B = 7
_GEN_X = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GEN_Y = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


class Secp256k1Element(GroupElement):
    """Point in Jacobian coordinates (X : Y : Z); Z = 0 is infinity."""

    __slots__ = ("x", "y", "z", "group")

    def __init__(self, group: "Secp256k1Group", x: int, y: int, z: int):
        self.group = group
        self.x, self.y, self.z = x % P, y % P, z % P

    def is_infinity(self) -> bool:
        return self.z == 0

    def affine(self) -> tuple[int, int]:
        if self.z == 0:
            return 0, 0
        z_inv = _mb.modinv(self.z, P)
        z2 = z_inv * z_inv % P
        return self.x * z2 % P, self.y * z2 * z_inv % P

    def _double(self) -> "Secp256k1Element":
        if self.z == 0 or self.y == 0:
            return self.group.identity()
        x, y, z = self.x, self.y, self.z
        a = x * x % P
        b = y * y % P
        c = b * b % P
        d = 2 * ((x + b) * (x + b) - a - c) % P
        e = 3 * a % P
        f = e * e % P
        x3 = (f - 2 * d) % P
        y3 = (e * (d - x3) - 8 * c) % P
        z3 = 2 * y * z % P
        return Secp256k1Element(self.group, x3, y3, z3)

    def double(self) -> "Secp256k1Element":
        return self._double()

    def __mul__(self, other: GroupElement) -> "Secp256k1Element":
        if not isinstance(other, Secp256k1Element):
            return NotImplemented
        if self.z == 0:
            return other
        if other.z == 0:
            return self
        z1z1 = self.z * self.z % P
        z2z2 = other.z * other.z % P
        u1 = self.x * z2z2 % P
        u2 = other.x * z1z1 % P
        s1 = self.y * other.z * z2z2 % P
        s2 = other.y * self.z * z1z1 % P
        if u1 == u2:
            if s1 != s2:
                return self.group.identity()
            return self._double()
        h = (u2 - u1) % P
        i = (2 * h) * (2 * h) % P
        j = h * i % P
        r = 2 * (s2 - s1) % P
        v = u1 * i % P
        x3 = (r * r - j - 2 * v) % P
        y3 = (r * (v - x3) - 2 * s1 * j) % P
        z3 = ((self.z + other.z) * (self.z + other.z) - z1z1 - z2z2) * h % P
        return Secp256k1Element(self.group, x3, y3, z3)

    def __pow__(self, scalar: int) -> "Secp256k1Element":
        scalar %= N
        result = self.group.identity()
        if scalar == 0:
            return result
        for bit in bin(scalar)[2:]:
            result = result._double()
            if bit == "1":
                result = result * self
        return result

    def inverse(self) -> "Secp256k1Element":
        if self.z == 0:
            return self
        return Secp256k1Element(self.group, self.x, -self.y, self.z)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Secp256k1Element):
            return NotImplemented
        if self.z == 0 or other.z == 0:
            return self.z == other.z
        z1z1 = self.z * self.z % P
        z2z2 = other.z * other.z % P
        return (
            self.x * z2z2 % P == other.x * z1z1 % P
            and self.y * z2z2 * other.z % P == other.y * z1z1 * self.z % P
        )

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def to_bytes(self) -> bytes:
        """SEC1 compressed encoding; infinity = single 0x00 byte + zeros."""
        if self.z == 0:
            return bytes(33)
        x, y = self.affine()
        prefix = 0x02 if y % 2 == 0 else 0x03
        return bytes([prefix]) + x.to_bytes(32, "big")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<secp256k1 {self.to_bytes().hex()[:16]}…>"


class Secp256k1Group(Group):
    """The Bitcoin curve as a Thetacrypt group backend."""

    name = "secp256k1"
    order = N
    key_bits = 256

    def __init__(self) -> None:
        self._generator = Secp256k1Element(self, _GEN_X, _GEN_Y, 1)
        self._identity = Secp256k1Element(self, 1, 1, 0)

    def generator(self) -> Secp256k1Element:
        return self._generator

    def identity(self) -> Secp256k1Element:
        return self._identity

    def element_from_bytes(self, data: bytes) -> Secp256k1Element:
        if len(data) != 33:
            raise SerializationError("secp256k1 element must be 33 bytes")
        if data == bytes(33):
            return self.identity()
        prefix = data[0]
        if prefix not in (0x02, 0x03):
            raise SerializationError("invalid SEC1 prefix")
        x = int.from_bytes(data[1:], "big")
        if x >= P:
            raise SerializationError("secp256k1 x coordinate out of range")
        y2 = (x * x * x + B) % P
        try:
            y = sqrt_mod_prime(y2, P)
        except Exception as exc:
            raise SerializationError("secp256k1 point not on curve") from exc
        if y % 2 != prefix - 0x02:
            y = P - y
        # Cofactor 1: on-curve implies in-group.
        return Secp256k1Element(self, x, y, 1)

    raw_coords = 2

    def elements_to_raw(self, elements) -> list[tuple[int, ...]]:
        """Batch-normalized affine (x, y) pairs; infinity encodes as (0, 0).

        One Montgomery batch inversion covers every non-infinity z, instead
        of the per-element ``modinv`` that :meth:`Secp256k1Element.affine`
        pays when called point by point.
        """
        z_values = [e.z for e in elements if e.z != 0]
        inverses = iter(batch_inverse(z_values, P))
        raw: list[tuple[int, ...]] = []
        for element in elements:
            if element.z == 0:
                raw.append((0, 0))
                continue
            z_inv = next(inverses)
            z2 = z_inv * z_inv % P
            raw.append((element.x * z2 % P, element.y * z2 * z_inv % P))
        return raw

    def element_from_raw(self, coords) -> Secp256k1Element:
        x, y = coords
        if x == 0 and y == 0:
            return self.identity()
        if not (0 <= x < P and 0 <= y < P):
            raise SerializationError("secp256k1 raw coordinate out of range")
        if (y * y - x * x * x - B) % P != 0:
            raise SerializationError("secp256k1 raw point not on curve")
        return Secp256k1Element(self, x, y, 1)

    def hash_to_element(self, data: bytes) -> Secp256k1Element:
        counter = 0
        while True:
            digest = hashlib.sha256(
                b"repro-secp256k1-h2c" + counter.to_bytes(4, "big") + data
            ).digest()
            counter += 1
            x = int.from_bytes(digest, "big") % P
            y2 = (x * x * x + B) % P
            if _mb.modexp(y2, (P - 1) // 2, P) != 1:
                continue
            y = sqrt_mod_prime(y2, P)
            if y > P - y:
                y = P - y
            return Secp256k1Element(self, x, y, 1)


_GROUP = Secp256k1Group()


def secp256k1() -> Secp256k1Group:
    """Return the shared secp256k1 group instance."""
    return _GROUP
