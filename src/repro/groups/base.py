"""Abstract group interface shared by all curve backends.

The schemes module is written against this interface only, mirroring how the
original Thetacrypt parametrizes schemes "just with the scheme type and the
arithmetic group needed for it" (§3.5).  A *group* here is a cyclic group of
prime order ``q`` with a fixed generator; elements are immutable value
objects supporting the usual multiplicative notation.
"""

from __future__ import annotations

import secrets
from abc import ABC, abstractmethod
from typing import Sequence

from ..errors import SerializationError


class GroupElement(ABC):
    """Immutable element of a prime-order group (multiplicative notation)."""

    group: "Group"

    @abstractmethod
    def __mul__(self, other: "GroupElement") -> "GroupElement":
        """Group operation."""

    @abstractmethod
    def __pow__(self, scalar: int) -> "GroupElement":
        """Scalar exponentiation; negative scalars are reduced mod the order."""

    @abstractmethod
    def inverse(self) -> "GroupElement":
        """Group inverse."""

    @abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abstractmethod
    def __hash__(self) -> int: ...

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical fixed-length encoding (hashable into Fiat-Shamir)."""

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        return self * other.inverse()

    def double(self) -> "GroupElement":
        """Square the element; backends override with a dedicated formula.

        Jacobian-coordinate backends pay a multi-field-op equality probe in
        ``__mul__`` before dispatching to their internal doubling, so the hot
        doubling chains (``__pow__``, :meth:`Group.multi_exp`) go through this
        method instead.
        """
        return self * self

    def is_identity(self) -> bool:
        return self == self.group.identity()


class Group(ABC):
    """A named cyclic group of prime order with a canonical generator."""

    #: Registry name, e.g. ``"ed25519"`` or ``"bn254g1"``.
    name: str
    #: Prime order of the group.
    order: int
    #: Nominal key length in bits (reported in Table 3 of the paper).
    key_bits: int

    @abstractmethod
    def generator(self) -> GroupElement: ...

    @abstractmethod
    def identity(self) -> GroupElement: ...

    @abstractmethod
    def element_from_bytes(self, data: bytes) -> GroupElement:
        """Decode a canonical encoding; raise SerializationError if invalid."""

    @abstractmethod
    def hash_to_element(self, data: bytes) -> GroupElement:
        """Deterministically map bytes to a group element (random-oracle style)."""

    def random_scalar(self) -> int:
        """Uniform nonzero scalar in Z_q (exponent space)."""
        while True:
            value = secrets.randbelow(self.order)
            if value:
                return value

    def scalar_from_bytes(self, data: bytes) -> int:
        """Reduce a byte string into Z_q (used for Fiat-Shamir challenges)."""
        return int.from_bytes(data, "big") % self.order

    def element_size(self) -> int:
        """Length in bytes of the canonical element encoding."""
        return len(self.generator().to_bytes())

    #: How many 32-byte integer coordinates :meth:`elements_to_raw` emits
    #: per element (0 = this group does not support raw persistence).
    raw_coords: int = 0

    def elements_to_raw(
        self, elements: Sequence[GroupElement]
    ) -> list[tuple[int, ...]]:
        """Affine coordinate tuples for trusted storage (table persistence).

        Unlike :meth:`GroupElement.to_bytes` this is a *batch* API: curve
        backends normalize all projective denominators with one Montgomery
        batch inversion instead of one inversion per element, which is what
        makes serializing a thousand-entry fixed-base table cheap.  The
        inverse, :meth:`element_from_raw`, re-validates the curve equation
        but deliberately skips the expensive subgroup checks — raw coords
        are only ever read back from integrity-checked local storage, never
        from the wire.
        """
        raise NotImplementedError(f"{self.name} has no raw coordinate codec")

    def element_from_raw(self, coords: Sequence[int]) -> GroupElement:
        """Rebuild an element from :meth:`elements_to_raw` output.

        Raises :class:`SerializationError` for coordinates that do not
        satisfy the curve equation (a corrupted table file must be
        discarded, not trusted).
        """
        raise NotImplementedError(f"{self.name} has no raw coordinate codec")

    def multi_exp(
        self, bases: Sequence[GroupElement], exponents: Sequence[int], window: int = 4
    ) -> GroupElement:
        """Compute Π bases[i]^exponents[i] with interleaved windowed Straus.

        All k exponentiations share one chain of doublings, so the cost is
        ~log₂(q) squarings + k·(2^w + log₂(q)/w) multiplications instead of
        k·1.5·log₂(q) operations — the hot step of every ``combine()``.
        """
        if len(bases) != len(exponents):
            raise SerializationError("multi_exp length mismatch")
        pairs = [
            (base, exp % self.order)
            for base, exp in zip(bases, exponents)
            if exp % self.order
        ]
        if not pairs:
            return self.identity()
        radix = 1 << window
        tables = []
        for base, _ in pairs:
            row: list[GroupElement] = [self.identity(), base]
            for _ in range(radix - 2):
                row.append(row[-1] * base)
            tables.append(row)
        mask = radix - 1
        blocks = (max(exp.bit_length() for _, exp in pairs) + window - 1) // window
        acc = self.identity()
        for block in range(blocks - 1, -1, -1):
            if block != blocks - 1:
                for _ in range(window):
                    acc = acc.double()
            shift = block * window
            for (_, exp), row in zip(pairs, tables):
                digit = (exp >> shift) & mask
                if digit:
                    acc = acc * row[digit]
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group {self.name} order={self.order:#x}>"
