"""Abstract group interface shared by all curve backends.

The schemes module is written against this interface only, mirroring how the
original Thetacrypt parametrizes schemes "just with the scheme type and the
arithmetic group needed for it" (§3.5).  A *group* here is a cyclic group of
prime order ``q`` with a fixed generator; elements are immutable value
objects supporting the usual multiplicative notation.
"""

from __future__ import annotations

import secrets
from abc import ABC, abstractmethod
from typing import Sequence

from ..errors import SerializationError


class GroupElement(ABC):
    """Immutable element of a prime-order group (multiplicative notation)."""

    group: "Group"

    @abstractmethod
    def __mul__(self, other: "GroupElement") -> "GroupElement":
        """Group operation."""

    @abstractmethod
    def __pow__(self, scalar: int) -> "GroupElement":
        """Scalar exponentiation; negative scalars are reduced mod the order."""

    @abstractmethod
    def inverse(self) -> "GroupElement":
        """Group inverse."""

    @abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abstractmethod
    def __hash__(self) -> int: ...

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical fixed-length encoding (hashable into Fiat-Shamir)."""

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        return self * other.inverse()

    def is_identity(self) -> bool:
        return self == self.group.identity()


class Group(ABC):
    """A named cyclic group of prime order with a canonical generator."""

    #: Registry name, e.g. ``"ed25519"`` or ``"bn254g1"``.
    name: str
    #: Prime order of the group.
    order: int
    #: Nominal key length in bits (reported in Table 3 of the paper).
    key_bits: int

    @abstractmethod
    def generator(self) -> GroupElement: ...

    @abstractmethod
    def identity(self) -> GroupElement: ...

    @abstractmethod
    def element_from_bytes(self, data: bytes) -> GroupElement:
        """Decode a canonical encoding; raise SerializationError if invalid."""

    @abstractmethod
    def hash_to_element(self, data: bytes) -> GroupElement:
        """Deterministically map bytes to a group element (random-oracle style)."""

    def random_scalar(self) -> int:
        """Uniform nonzero scalar in Z_q (exponent space)."""
        while True:
            value = secrets.randbelow(self.order)
            if value:
                return value

    def scalar_from_bytes(self, data: bytes) -> int:
        """Reduce a byte string into Z_q (used for Fiat-Shamir challenges)."""
        return int.from_bytes(data, "big") % self.order

    def element_size(self) -> int:
        """Length in bytes of the canonical element encoding."""
        return len(self.generator().to_bytes())

    def multi_exp(
        self, bases: Sequence[GroupElement], exponents: Sequence[int]
    ) -> GroupElement:
        """Compute Π bases[i]^exponents[i] (naive; subclasses may optimize)."""
        if len(bases) != len(exponents):
            raise SerializationError("multi_exp length mismatch")
        acc = self.identity()
        for base, exp in zip(bases, exponents):
            acc = acc * (base**exp)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group {self.name} order={self.order:#x}>"
