"""Name-based group lookup used by key managers and RPC request decoding."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ConfigurationError
from .base import Group

_FACTORIES: Dict[str, Callable[[], Group]] = {}


def register_group(name: str, factory: Callable[[], Group]) -> None:
    """Register a group factory under ``name`` (idempotent)."""
    _FACTORIES[name] = factory


_BUILTINS: Dict[str, Callable[[], Group]] | None = None


def _builtin_factories() -> Dict[str, Callable[[], Group]]:
    # Imported lazily so that loading one curve backend does not pay for the
    # other (BN254's tower construction does noticeable work at import time),
    # and memoized so repeated list_groups()/get_group() calls don't redo
    # the submodule lookups.
    global _BUILTINS
    if _BUILTINS is None:
        from . import bn254, ed25519, secp256k1

        _BUILTINS = {
            "ed25519": ed25519.ed25519,
            "bn254g1": bn254.bn254_g1,
            "bn254g2": bn254.bn254_g2,
            "secp256k1": secp256k1.secp256k1,
        }
    return _BUILTINS


def get_group(name: str) -> Group:
    """Return the shared instance of the group registered under ``name``."""
    if name not in _FACTORIES:
        builtin = _builtin_factories()
        if name not in builtin:
            raise ConfigurationError(
                f"unknown group {name!r}; known: {sorted(set(_FACTORIES) | set(builtin))}"
            )
        _FACTORIES.update(builtin)
    return _FACTORIES[name]()


def list_groups() -> list[str]:
    """Names of all known groups."""
    return sorted(set(_FACTORIES) | set(_builtin_factories()))
