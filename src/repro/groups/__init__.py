"""Arithmetic group substrate (the role MIRACL Core plays in Thetacrypt).

Exposes a uniform :class:`~repro.groups.base.Group` interface over two curve
families:

* :mod:`repro.groups.ed25519` — prime-order subgroup of the twisted Edwards
  curve edwards25519; used by the ECDH-based schemes (SG02, KG20, CKS05).
* :mod:`repro.groups.bn254` — the pairing-friendly Barreto–Naehrig curve
  BN254 with an optimal ate pairing; used by BLS04 and BZ03.
"""

from .base import Group, GroupElement
from .precompute import (
    FixedBaseTable,
    clear_precompute_cache,
    fixed_base_table,
    fixed_pow,
    precompute_stats,
)
from .registry import get_group, list_groups

__all__ = [
    "Group",
    "GroupElement",
    "FixedBaseTable",
    "clear_precompute_cache",
    "fixed_base_table",
    "fixed_pow",
    "precompute_stats",
    "get_group",
    "list_groups",
]
