"""Arithmetic group substrate (the role MIRACL Core plays in Thetacrypt).

Exposes a uniform :class:`~repro.groups.base.Group` interface over two curve
families:

* :mod:`repro.groups.ed25519` — prime-order subgroup of the twisted Edwards
  curve edwards25519; used by the ECDH-based schemes (SG02, KG20, CKS05).
* :mod:`repro.groups.bn254` — the pairing-friendly Barreto–Naehrig curve
  BN254 with an optimal ate pairing; used by BLS04 and BZ03.
"""

from .base import Group, GroupElement
from .precompute import (
    FixedBaseTable,
    clear_precompute_cache,
    fixed_base_table,
    fixed_pow,
    install_table,
    precompute_stats,
    snapshot_tables,
)
from .registry import get_group, list_groups

# The table-persistence exports resolve lazily: .tables imports the
# storage layer, which imports the schemes, which import this package —
# a module-level import here would close that cycle during interpreter
# start-up (the worker-spawn path hits it).
_TABLES_EXPORTS = ("TableStore", "table_blob", "table_from_blob")


def __getattr__(name: str):
    if name in _TABLES_EXPORTS:
        from . import tables

        return getattr(tables, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Group",
    "GroupElement",
    "FixedBaseTable",
    "TableStore",
    "clear_precompute_cache",
    "fixed_base_table",
    "fixed_pow",
    "install_table",
    "precompute_stats",
    "snapshot_tables",
    "table_blob",
    "table_from_blob",
    "get_group",
    "list_groups",
]
