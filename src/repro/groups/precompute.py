"""Fixed-base exponentiation tables and the shared precomputation cache.

The evaluation hot paths (§4) are dominated by scalar multiplications whose
bases barely change: every request exponentiates the group generator, the
service public key, or a per-party verification key.  A windowed fixed-base
table turns one such exponentiation from ~1.5·log₂(q) group operations into
~log₂(q)/w table lookups and multiplications, at a one-time build cost of
roughly three naive exponentiations.

Because building a table only pays off for bases that recur, the cache uses
*promotion*: a base is exponentiated naively until it has been seen
``promotion_threshold`` times, after which a table is built and cached in a
bounded LRU.  Generators, public keys, and verification keys are promoted
within the first few requests; per-request ephemeral bases (ciphertext
``u``-values, message hashes of one-off messages) never are, so the cache
cannot be thrashed by request traffic.

All counters are exposed via :func:`precompute_stats` and surfaced through
``ThetacryptNode.stats()`` so benchmarks can report hit rates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import GroupElement

#: Window width in bits.  4 is the sweet spot for 254-/256-bit orders in
#: pure Python: 16-entry rows keep the build cost low while cutting the
#: online cost to ~64 multiplications.
DEFAULT_WINDOW = 4


class FixedBaseTable:
    """Windowed (radix-2^w) fixed-base exponentiation table for one element.

    Precomputes ``base^(d·2^(w·b))`` for every window position ``b`` and
    digit ``d``; an exponentiation is then the product of one table entry
    per nonzero window of the scalar — no doublings at all.
    """

    __slots__ = ("base", "order", "window", "_identity", "_rows")

    def __init__(self, base: "GroupElement", window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.base = base
        self.order = base.group.order
        self.window = window
        self._identity = base.group.identity()
        radix = 1 << window
        blocks = (self.order.bit_length() + window - 1) // window
        rows = []
        power = base  # base^(radix^block) at the top of each iteration
        for _ in range(blocks):
            row = [self._identity]
            for _ in range(radix - 1):
                row.append(row[-1] * power)
            rows.append(row)
            power = row[-1] * power
        self._rows = rows

    @classmethod
    def from_rows(
        cls, base: "GroupElement", window: int, rows: list
    ) -> "FixedBaseTable":
        """Rebuild a table from persisted rows without recomputing them.

        Only shape and the cheapest correctness anchor (``rows[0][1] ==
        base``) are checked here; per-point curve-equation validation
        happens in the raw-coordinate decoder that produced ``rows``.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        radix = 1 << window
        order = base.group.order
        blocks = (order.bit_length() + window - 1) // window
        if len(rows) != blocks or any(len(row) != radix for row in rows):
            raise ValueError("persisted table has wrong shape")
        if rows[0][1] != base:
            raise ValueError("persisted table does not match its base")
        table = cls.__new__(cls)
        table.base = base
        table.order = order
        table.window = window
        table._identity = base.group.identity()
        table._rows = rows
        return table

    def rows(self) -> list:
        """The precomputed rows (read-only; used by the table serializer)."""
        return self._rows

    def pow(self, scalar: int) -> "GroupElement":
        """``base ** scalar`` via table lookups; matches ``__pow__`` exactly."""
        scalar %= self.order
        result = self._identity
        mask = (1 << self.window) - 1
        block = 0
        while scalar:
            digit = scalar & mask
            if digit:
                result = result * self._rows[block][digit]
            scalar >>= self.window
            block += 1
        return result


class PrecomputeCache:
    """Promotion-based LRU cache of :class:`FixedBaseTable` instances."""

    def __init__(
        self,
        table_capacity: int = 128,
        seen_capacity: int = 4096,
        promotion_threshold: int = 3,
    ):
        self.table_capacity = table_capacity
        self.seen_capacity = seen_capacity
        self.promotion_threshold = promotion_threshold
        self._tables: "OrderedDict[tuple[str, bytes], FixedBaseTable]" = OrderedDict()
        self._seen: "OrderedDict[tuple[str, bytes], int]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.tables_built = 0
        self.evictions = 0
        self.promotions = 0
        self.loads = 0

    @staticmethod
    def _key(base: "GroupElement") -> tuple[str, bytes]:
        return (base.group.name, base.to_bytes())

    def table_for(self, base: "GroupElement") -> FixedBaseTable:
        """Return the cached table for ``base``, building it unconditionally."""
        key = self._key(base)
        with self._lock:
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                return table
        table = FixedBaseTable(base)
        with self._lock:
            self.tables_built += 1
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self.table_capacity:
                self._tables.popitem(last=False)
                self.evictions += 1
        return table

    def pow(self, base: "GroupElement", scalar: int) -> "GroupElement":
        """``base ** scalar``, through a table once the base has recurred."""
        key = self._key(base)
        build = False
        with self._lock:
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
                count = self._seen.get(key, 0) + 1
                self._seen[key] = count
                self._seen.move_to_end(key)
                while len(self._seen) > self.seen_capacity:
                    self._seen.popitem(last=False)
                build = count >= self.promotion_threshold
        if table is not None:
            return table.pow(scalar)
        if build:
            with self._lock:
                self.promotions += 1
            return self.table_for(base).pow(scalar)
        return base**scalar

    def install(self, table: FixedBaseTable) -> bool:
        """Insert a prebuilt (deserialized) table; returns False if present.

        Installed tables count as ``loads`` rather than ``tables_built`` —
        the whole point of persistence is that a restart re-seeds the cache
        without paying the build cost again.
        """
        key = self._key(table.base)
        with self._lock:
            if key in self._tables:
                return False
            self.loads += 1
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self.table_capacity:
                self._tables.popitem(last=False)
                self.evictions += 1
        return True

    def snapshot_tables(self) -> list[FixedBaseTable]:
        """The currently cached tables, LRU order (for persistence)."""
        with self._lock:
            return list(self._tables.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "tables_built": self.tables_built,
                "evictions": self.evictions,
                "promotions": self.promotions,
                "loads": self.loads,
                "tables": len(self._tables),
                "capacity": self.table_capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()
            self._seen.clear()
            self.hits = self.misses = self.tables_built = self.evictions = 0
            self.promotions = self.loads = 0


_CACHE = PrecomputeCache()


def fixed_pow(base: "GroupElement", scalar: int) -> "GroupElement":
    """Process-wide cached fixed-base exponentiation (see module docstring)."""
    return _CACHE.pow(base, scalar)


def fixed_base_table(base: "GroupElement") -> FixedBaseTable:
    """Force-build (or fetch) the table for ``base`` in the shared cache."""
    return _CACHE.table_for(base)


def install_table(table: FixedBaseTable) -> bool:
    """Install a deserialized table into the shared cache (see ``install``)."""
    return _CACHE.install(table)


def snapshot_tables() -> list[FixedBaseTable]:
    """All tables currently in the shared cache (for persistence)."""
    return _CACHE.snapshot_tables()


def precompute_stats() -> dict:
    """Hit/size counters for the fixed-base table cache (node stats)."""
    return _CACHE.stats()


def clear_precompute_cache() -> None:
    """Drop all tables and reset counters (tests/benchmarks)."""
    _CACHE.clear()
