"""BN254 G1: the curve E(Fp): y² = x³ + 3, of prime order r (cofactor 1)."""

from __future__ import annotations

import hashlib

from ...errors import SerializationError
from ...mathutils import backends as _mb
from ...mathutils.modular import batch_inverse
from ..base import Group, GroupElement
from .fp import P, R

B = 3
_GEN_X, _GEN_Y = 1, 2


class BN254G1Element(GroupElement):
    """Point in Jacobian coordinates (X : Y : Z), affine = (X/Z², Y/Z³)."""

    __slots__ = ("x", "y", "z", "group")

    def __init__(self, group: "BN254G1Group", x: int, y: int, z: int):
        self.group = group
        self.x, self.y, self.z = x % P, y % P, z % P

    def is_infinity(self) -> bool:
        return self.z == 0

    def affine(self) -> tuple[int, int]:
        if self.z == 0:
            return 0, 0
        z_inv = _mb.modinv(self.z, P)
        z2 = z_inv * z_inv % P
        return self.x * z2 % P, self.y * z2 * z_inv % P

    def _double(self) -> "BN254G1Element":
        if self.z == 0 or self.y == 0:
            return self.group.identity()
        x, y, z = self.x, self.y, self.z
        a = x * x % P
        b = y * y % P
        c = b * b % P
        d = 2 * ((x + b) * (x + b) - a - c) % P
        e = 3 * a % P
        f = e * e % P
        x3 = (f - 2 * d) % P
        y3 = (e * (d - x3) - 8 * c) % P
        z3 = 2 * y * z % P
        return BN254G1Element(self.group, x3, y3, z3)

    def double(self) -> "BN254G1Element":
        return self._double()

    def __mul__(self, other: GroupElement) -> "BN254G1Element":
        if not isinstance(other, BN254G1Element):
            return NotImplemented
        if self.z == 0:
            return other
        if other.z == 0:
            return self
        # Jacobian addition (add-2007-bl, simplified).
        z1z1 = self.z * self.z % P
        z2z2 = other.z * other.z % P
        u1 = self.x * z2z2 % P
        u2 = other.x * z1z1 % P
        s1 = self.y * other.z * z2z2 % P
        s2 = other.y * self.z * z1z1 % P
        if u1 == u2:
            if s1 != s2:
                return self.group.identity()
            return self._double()
        h = (u2 - u1) % P
        i = (2 * h) * (2 * h) % P
        j = h * i % P
        r = 2 * (s2 - s1) % P
        v = u1 * i % P
        x3 = (r * r - j - 2 * v) % P
        y3 = (r * (v - x3) - 2 * s1 * j) % P
        z3 = ((self.z + other.z) * (self.z + other.z) - z1z1 - z2z2) * h % P
        return BN254G1Element(self.group, x3, y3, z3)

    def __pow__(self, scalar: int) -> "BN254G1Element":
        scalar %= R
        result = self.group.identity()
        if scalar == 0:
            return result
        for bit in bin(scalar)[2:]:
            result = result._double()
            if bit == "1":
                result = result * self
        return result

    def inverse(self) -> "BN254G1Element":
        if self.z == 0:
            return self
        return BN254G1Element(self.group, self.x, -self.y, self.z)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BN254G1Element):
            return NotImplemented
        if self.z == 0 or other.z == 0:
            return self.z == other.z
        z1z1 = self.z * self.z % P
        z2z2 = other.z * other.z % P
        return (
            self.x * z2z2 % P == other.x * z1z1 % P
            and self.y * z2z2 * other.z % P == other.y * z1z1 * self.z % P
        )

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def to_bytes(self) -> bytes:
        x, y = self.affine()
        return x.to_bytes(32, "big") + y.to_bytes(32, "big")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BN254G1 {self.to_bytes().hex()[:16]}…>"


class BN254G1Group(Group):
    """Prime-order group E(Fp) with generator (1, 2)."""

    name = "bn254g1"
    order = R
    key_bits = 254

    def __init__(self) -> None:
        self._generator = BN254G1Element(self, _GEN_X, _GEN_Y, 1)
        self._identity = BN254G1Element(self, 1, 1, 0)

    def generator(self) -> BN254G1Element:
        return self._generator

    def identity(self) -> BN254G1Element:
        return self._identity

    def element_from_bytes(self, data: bytes) -> BN254G1Element:
        if len(data) != 64:
            raise SerializationError("bn254 G1 element must be 64 bytes")
        x = int.from_bytes(data[:32], "big")
        y = int.from_bytes(data[32:], "big")
        if x == 0 and y == 0:
            return self.identity()
        if x >= P or y >= P:
            raise SerializationError("bn254 G1 coordinate out of range")
        if (y * y - x * x * x - B) % P != 0:
            raise SerializationError("bn254 G1 point not on curve")
        # Cofactor is 1: every curve point lies in the prime-order group.
        return BN254G1Element(self, x, y, 1)

    raw_coords = 2

    def elements_to_raw(self, elements) -> list[tuple[int, ...]]:
        """Batch-normalized affine (x, y) pairs; infinity encodes as (0, 0).

        One Montgomery batch inversion covers every non-infinity z instead
        of a per-element ``modinv`` (the one-at-a-time :meth:`affine` cost).
        """
        z_values = [e.z for e in elements if e.z != 0]
        inverses = iter(batch_inverse(z_values, P))
        raw: list[tuple[int, ...]] = []
        for element in elements:
            if element.z == 0:
                raw.append((0, 0))
                continue
            z_inv = next(inverses)
            z2 = z_inv * z_inv % P
            raw.append((element.x * z2 % P, element.y * z2 * z_inv % P))
        return raw

    def element_from_raw(self, coords) -> BN254G1Element:
        x, y = coords
        if x == 0 and y == 0:
            return self.identity()
        if not (0 <= x < P and 0 <= y < P):
            raise SerializationError("bn254 G1 raw coordinate out of range")
        if (y * y - x * x * x - B) % P != 0:
            raise SerializationError("bn254 G1 raw point not on curve")
        return BN254G1Element(self, x, y, 1)

    def hash_to_element(self, data: bytes) -> BN254G1Element:
        """Try-and-increment; p ≡ 3 (mod 4) so sqrt is a single power."""
        counter = 0
        while True:
            digest = hashlib.sha256(
                b"repro-bn254g1-h2c" + counter.to_bytes(4, "big") + data
            ).digest()
            counter += 1
            x = int.from_bytes(digest, "big") % P
            y2 = (x * x * x + B) % P
            y = _mb.modexp(y2, (P + 1) // 4, P)
            if y * y % P != y2:
                continue
            # Pick the lexicographically smaller root for determinism.
            if y > P - y:
                y = P - y
            if x == 0 and y == 0:
                continue
            return BN254G1Element(self, x, y, 1)


_GROUP = BN254G1Group()


def bn254_g1() -> BN254G1Group:
    """Return the shared BN254 G1 group instance."""
    return _GROUP
