"""Optimal ate pairing on BN254.

The Miller loop runs over the untwisted image of G2 in E(Fp12) with affine
line functions (clear rather than maximally fast), followed by the
Devegili–Scott–Dahab final exponentiation, whose hard part costs three
63-bit exponentiations by the BN parameter x instead of one 4314-bit one.
"""

from __future__ import annotations

from ...errors import CryptoError
from .fp import BN_X, Fp2, Fp6, Fp12, R
from .g1 import BN254G1Element, BN254G1Group, bn254_g1
from .g2 import BN254G2Element, BN254G2Group, bn254_g2

#: Optimal ate loop count 6x + 2.
ATE_LOOP_COUNT = 6 * BN_X + 2

_Point = tuple[Fp12, Fp12] | None  # affine point on E(Fp12); None = infinity


def _embed_fp2(value: Fp2, slot: int) -> Fp12:
    """Embed an Fp2 value times w^slot (slot in {2, 3}) into Fp12."""
    if slot == 2:  # w² = v
        return Fp12(Fp6(Fp2.zero(), value, Fp2.zero()), Fp6.zero())
    if slot == 3:  # w³ = v·w
        return Fp12(Fp6.zero(), Fp6(Fp2.zero(), value, Fp2.zero()))
    raise CryptoError(f"unsupported embedding slot {slot}")


def _untwist(q: BN254G2Element) -> _Point:
    """Map E'(Fp2) → E(Fp12): (x, y) ↦ (x·w², y·w³)."""
    if q.infinity:
        return None
    return _embed_fp2(q.x, 2), _embed_fp2(q.y, 3)


def _embed_g1(p: BN254G1Element) -> tuple[Fp12, Fp12]:
    x, y = p.affine()
    return Fp12.from_int(x), Fp12.from_int(y)


def _double_point(pt: _Point) -> _Point:
    if pt is None:
        return None
    x, y = pt
    if y.is_zero():
        return None
    slope = (x.square() * Fp12.from_int(3)) * (y + y).inverse()
    x3 = slope.square() - x - x
    y3 = slope * (x - x3) - y
    return x3, y3


def _add_points(a: _Point, b: _Point) -> _Point:
    if a is None:
        return b
    if b is None:
        return a
    x1, y1 = a
    x2, y2 = b
    if x1 == x2:
        if y1 == y2:
            return _double_point(a)
        return None
    slope = (y2 - y1) * (x2 - x1).inverse()
    x3 = slope.square() - x1 - x2
    y3 = slope * (x1 - x3) - y1
    return x3, y3


def _line(a: _Point, b: _Point, at: tuple[Fp12, Fp12]) -> Fp12:
    """Evaluate the line through a and b (tangent if equal) at point ``at``."""
    if a is None or b is None:
        raise CryptoError("line through point at infinity")
    x1, y1 = a
    x2, y2 = b
    xt, yt = at
    if x1 != x2:
        slope = (y2 - y1) * (x2 - x1).inverse()
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (x1.square() * Fp12.from_int(3)) * (y1 + y1).inverse()
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def _miller_loop(q: BN254G2Element, p: BN254G1Element) -> Fp12:
    if q.infinity or p.is_infinity():
        return Fp12.one()
    q12 = _untwist(q)
    p12 = _embed_g1(p)
    t = q12
    f = Fp12.one()
    bits = bin(ATE_LOOP_COUNT)[3:]  # skip "0b" and the most-significant bit
    for bit in bits:
        f = f.square() * _line(t, t, p12)
        t = _double_point(t)
        if bit == "1":
            f = f * _line(t, q12, p12)
            t = _add_points(t, q12)
    # Final two line evaluations with the Frobenius images of Q.
    assert q12 is not None
    q1 = (q12[0].frobenius(), q12[1].frobenius())
    q2 = (q12[0].frobenius2(), q12[1].frobenius2())
    neg_q2 = (q2[0], -q2[1])
    f = f * _line(t, q1, p12)
    t = _add_points(t, q1)
    f = f * _line(t, neg_q2, p12)
    return f


def _final_exponentiation(f: Fp12) -> Fp12:
    """f ↦ f^((p¹² − 1)/r) via easy part + DSD hard part."""
    if f.is_zero():
        raise CryptoError("pairing produced zero (degenerate input)")
    # Easy part: f^(p⁶ − 1)(p² + 1).
    f = f.conjugate() * f.inverse()
    f = f.frobenius2() * f
    # Hard part (Devegili–Scott–Dahab addition chain for BN with x > 0).
    fx = f**BN_X
    fx2 = fx**BN_X
    fx3 = fx2**BN_X
    y0 = f.frobenius() * f.frobenius2() * f.frobenius3()
    y1 = f.conjugate()
    y2 = fx2.frobenius2()
    y3 = fx.frobenius().conjugate()
    y4 = (fx * fx2.frobenius()).conjugate()
    y5 = fx2.conjugate()
    y6 = (fx3 * fx3.frobenius()).conjugate()
    t0 = y6.square() * y4 * y5
    t1 = y3 * y5 * t0
    t0 = t0 * y2
    t1 = t1.square() * t0
    t1 = t1.square()
    t0 = t1 * y1
    t1 = t1 * y0
    t0 = t0.square()
    return t0 * t1


def pairing(p: BN254G1Element, q: BN254G2Element) -> Fp12:
    """The optimal ate pairing e(P, Q) ∈ GT ⊂ Fp12."""
    if p.is_infinity() or q.infinity:
        return Fp12.one()
    return _final_exponentiation(_miller_loop(q, p))


def pairing_check(pairs: list[tuple[BN254G1Element, BN254G2Element]]) -> bool:
    """Return True iff Π e(P_i, Q_i) == 1 (single shared final exponentiation)."""
    f = Fp12.one()
    for p, q in pairs:
        if p.is_infinity() or q.infinity:
            continue
        f = f * _miller_loop(q, p)
    return _final_exponentiation(f).is_one()


class BilinearGroup:
    """Bundle of (G1, G2, GT, e) used by the pairing-based schemes.

    Mirrors how MIRACL exposes a pairing-friendly curve: two source groups
    with independent generators plus the bilinear map between them.
    """

    name = "bn254"
    order = R
    key_bits = 254

    def __init__(self) -> None:
        self.g1: BN254G1Group = bn254_g1()
        self.g2: BN254G2Group = bn254_g2()

    def pair(self, p: BN254G1Element, q: BN254G2Element) -> Fp12:
        return pairing(p, q)

    def pair_check(
        self, pairs: list[tuple[BN254G1Element, BN254G2Element]]
    ) -> bool:
        return pairing_check(pairs)

    def gt_identity(self) -> Fp12:
        return Fp12.one()


_BILINEAR = BilinearGroup()


def bn254_pairing() -> BilinearGroup:
    """Return the shared bilinear-group instance."""
    return _BILINEAR
