"""Extension-field tower for BN254: Fp2, Fp6, Fp12.

Representation: Fp2 = Fp[u]/(u² + 1); Fp6 = Fp2[v]/(v³ − ξ) with ξ = 9 + u;
Fp12 = Fp6[w]/(w² − v).  All classes are immutable value objects with
Karatsuba-style multiplication; Frobenius maps use constants precomputed at
import time (γ powers of ξ), which the pairing and the final exponentiation
rely on.
"""

from __future__ import annotations

from ...errors import CryptoError
from ...mathutils import backends as _mb

#: Base-field prime of alt_bn128 (the BN254 instantiation used by Ethereum).
P = 21888242871839275222246405745257275088696311157297823662689037894645226208583
#: Prime group order r (both G1 and G2 subgroups have this order).
R = 21888242871839275222246405745257275088548364400416034343698204186575808495617
#: BN parameter x: p and r are degree-4 polynomials in x.
BN_X = 4965661367192848881


class Fp2:
    """Element c0 + c1·u of Fp2 with u² = −1."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int):
        self.c0 = c0 % P
        self.c1 = c1 % P

    @staticmethod
    def zero() -> "Fp2":
        return Fp2(0, 0)

    @staticmethod
    def one() -> "Fp2":
        return Fp2(1, 0)

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __add__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.c0, -self.c1)

    def __mul__(self, other: "Fp2") -> "Fp2":
        # Karatsuba with u² = −1.
        t0 = self.c0 * other.c0
        t1 = self.c1 * other.c1
        return Fp2(t0 - t1, (self.c0 + self.c1) * (other.c0 + other.c1) - t0 - t1)

    def mul_int(self, k: int) -> "Fp2":
        return Fp2(self.c0 * k, self.c1 * k)

    def square(self) -> "Fp2":
        # (c0 + c1 u)² = (c0+c1)(c0−c1) + 2 c0 c1 u.
        return Fp2((self.c0 + self.c1) * (self.c0 - self.c1), 2 * self.c0 * self.c1)

    def conjugate(self) -> "Fp2":
        return Fp2(self.c0, -self.c1)

    def inverse(self) -> "Fp2":
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % P
        if norm == 0:
            raise CryptoError("inversion of zero in Fp2")
        inv = _mb.modinv(norm, P)
        return Fp2(self.c0 * inv, -self.c1 * inv)

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result, base = Fp2.one(), self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def mul_xi(self) -> "Fp2":
        """Multiply by ξ = 9 + u (the Fp6 non-residue)."""
        return Fp2(9 * self.c0 - self.c1, self.c0 + 9 * self.c1)

    def is_square(self) -> bool:
        """Euler criterion in Fp2 (field of order p²)."""
        if self.is_zero():
            return True
        return (self ** ((P * P - 1) // 2)) == Fp2.one()

    def sqrt(self) -> "Fp2":
        """Square root via the complex method (p ≡ 3 mod 4)."""
        if self.is_zero():
            return Fp2.zero()
        # For a = c0 + c1·u, |a| = sqrt(c0² + c1²) in Fp; then
        # x = sqrt((c0 + |a|)/2), y = c1/(2x) gives (x + y·u)² = a.
        from ...mathutils.modular import sqrt_mod_prime

        if self.c1 == 0:
            # Purely real: either √c0 exists in Fp, or √(−c0)·u works since
            # (y·u)² = −y².
            if _mb.modexp(self.c0, (P - 1) // 2, P) == 1:
                return Fp2(sqrt_mod_prime(self.c0, P), 0)
            return Fp2(0, sqrt_mod_prime((-self.c0) % P, P))
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % P
        alpha = sqrt_mod_prime(norm, P)
        inv2 = _mb.modinv(2, P)
        for candidate_alpha in (alpha, (-alpha) % P):
            delta = (self.c0 + candidate_alpha) * inv2 % P
            if _mb.modexp(delta, (P - 1) // 2, P) in (0, 1):
                x = sqrt_mod_prime(delta, P)
                if x == 0:
                    continue
                y = self.c1 * _mb.modinv(2 * x, P) % P
                root = Fp2(x, y)
                if root.square() == self:
                    return root
        raise CryptoError("no square root exists in Fp2")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp2):
            return NotImplemented
        return self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Fp2({self.c0:#x}, {self.c1:#x})"


XI = Fp2(9, 1)


class Fp6:
    """Element c0 + c1·v + c2·v² of Fp6 with v³ = ξ."""

    __slots__ = ("c0", "c1", "c2")

    def __init__(self, c0: Fp2, c1: Fp2, c2: Fp2):
        self.c0, self.c1, self.c2 = c0, c1, c2

    @staticmethod
    def zero() -> "Fp6":
        return Fp6(Fp2.zero(), Fp2.zero(), Fp2.zero())

    @staticmethod
    def one() -> "Fp6":
        return Fp6(Fp2.one(), Fp2.zero(), Fp2.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __add__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self) -> "Fp6":
        return Fp6(-self.c0, -self.c1, -self.c2)

    def __mul__(self, other: "Fp6") -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = other.c0, other.c1, other.c2
        t0, t1, t2 = a0 * b0, a1 * b1, a2 * b2
        c0 = ((a1 + a2) * (b1 + b2) - t1 - t2).mul_xi() + t0
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1 + t2.mul_xi()
        c2 = (a0 + a2) * (b0 + b2) - t0 - t2 + t1
        return Fp6(c0, c1, c2)

    def scale(self, k: Fp2) -> "Fp6":
        return Fp6(self.c0 * k, self.c1 * k, self.c2 * k)

    def square(self) -> "Fp6":
        return self * self

    def mul_by_v(self) -> "Fp6":
        """Multiply by v: (c0, c1, c2) ↦ (ξ·c2, c0, c1)."""
        return Fp6(self.c2.mul_xi(), self.c0, self.c1)

    def inverse(self) -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        t0 = a0.square() - (a1 * a2).mul_xi()
        t1 = a2.square().mul_xi() - a0 * a1
        t2 = a1.square() - a0 * a2
        norm = a0 * t0 + (a2 * t1 + a1 * t2).mul_xi()
        inv = norm.inverse()
        return Fp6(t0 * inv, t1 * inv, t2 * inv)

    def frobenius(self) -> "Fp6":
        return Fp6(
            self.c0.conjugate(),
            self.c1.conjugate() * FROB6_C1,
            self.c2.conjugate() * FROB6_C2,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp6):
            return NotImplemented
        return self.c0 == other.c0 and self.c1 == other.c1 and self.c2 == other.c2

    def __hash__(self) -> int:
        return hash((self.c0, self.c1, self.c2))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Fp6({self.c0!r}, {self.c1!r}, {self.c2!r})"


class Fp12:
    """Element c0 + c1·w of Fp12 with w² = v."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: Fp6, c1: Fp6):
        self.c0, self.c1 = c0, c1

    @staticmethod
    def zero() -> "Fp12":
        return Fp12(Fp6.zero(), Fp6.zero())

    @staticmethod
    def one() -> "Fp12":
        return Fp12(Fp6.one(), Fp6.zero())

    @staticmethod
    def from_int(value: int) -> "Fp12":
        return Fp12(Fp6(Fp2(value, 0), Fp2.zero(), Fp2.zero()), Fp6.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero()

    def is_one(self) -> bool:
        return self == Fp12.one()

    def __add__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp12":
        return Fp12(-self.c0, -self.c1)

    def __mul__(self, other: "Fp12") -> "Fp12":
        t0 = self.c0 * other.c0
        t1 = self.c1 * other.c1
        c0 = t0 + t1.mul_by_v()
        c1 = (self.c0 + self.c1) * (other.c0 + other.c1) - t0 - t1
        return Fp12(c0, c1)

    def square(self) -> "Fp12":
        # Complex squaring: (c0 + c1 w)² with w² = v.
        t0 = self.c0 * self.c1
        c0 = (self.c0 + self.c1) * (self.c0 + self.c1.mul_by_v()) - t0 - t0.mul_by_v()
        return Fp12(c0, t0 + t0)

    def conjugate(self) -> "Fp12":
        """The p⁶-Frobenius; equals inversion on the cyclotomic subgroup."""
        return Fp12(self.c0, -self.c1)

    def inverse(self) -> "Fp12":
        norm = self.c0.square() - self.c1.square().mul_by_v()
        inv = norm.inverse()
        return Fp12(self.c0 * inv, -(self.c1 * inv))

    def __pow__(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result, base = Fp12.one(), self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def frobenius(self) -> "Fp12":
        return Fp12(self.c0.frobenius(), self.c1.frobenius().scale(FROB12_C1))

    def frobenius2(self) -> "Fp12":
        return self.frobenius().frobenius()

    def frobenius3(self) -> "Fp12":
        return self.frobenius2().frobenius()

    def to_bytes(self) -> bytes:
        """Canonical 384-byte encoding (12 Fp coefficients, big-endian)."""
        coeffs = []
        for fp6 in (self.c0, self.c1):
            for fp2 in (fp6.c0, fp6.c1, fp6.c2):
                coeffs.extend((fp2.c0, fp2.c1))
        return b"".join(c.to_bytes(32, "big") for c in coeffs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp12):
            return NotImplemented
        return self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Fp12({self.c0!r}, {self.c1!r})"


# Frobenius constants: γ = ξ^((p−1)/k) for the tower maps, computed once.
FROB6_C1 = XI ** ((P - 1) // 3)
FROB6_C2 = XI ** (2 * (P - 1) // 3)
FROB12_C1 = XI ** ((P - 1) // 6)

# Twist Frobenius constants (untwist–Frobenius–twist endomorphism on E'(Fp2)).
TWIST_FROB_X = XI ** ((P - 1) // 3)
TWIST_FROB_Y = XI ** ((P - 1) // 2)
