"""BN254 G2: prime-order subgroup of the sextic twist E'(Fp2): y² = x³ + 3/ξ."""

from __future__ import annotations

import hashlib

from ...errors import SerializationError
from ..base import Group, GroupElement
from .fp import Fp2, P, R, XI

#: Twist curve constant b' = 3/ξ.
B2 = Fp2(3, 0) * XI.inverse()

#: Cofactor of the twist: #E'(Fp2) = (2p − r)·r.
G2_COFACTOR = 2 * P - R

# Canonical generator (the one used by Ethereum's alt_bn128 precompiles).
_GEN_X = Fp2(
    10857046999023057135944570762232829481370756359578518086990519993285655852781,
    11559732032986387107991004021392285783925812861821192530917403151452391805634,
)
_GEN_Y = Fp2(
    8495653923123431417604973247489272438418190587263600148770280649306958101930,
    4082367875863433681332203403145435568316851327593401208105741076214120093531,
)


class BN254G2Element(GroupElement):
    """Affine point on the twist, or the point at infinity."""

    __slots__ = ("x", "y", "infinity", "group")

    def __init__(
        self, group: "BN254G2Group", x: Fp2, y: Fp2, infinity: bool = False
    ):
        self.group = group
        self.x, self.y = x, y
        self.infinity = infinity

    def _double(self) -> "BN254G2Element":
        if self.infinity or self.y.is_zero():
            return self.group.identity()
        slope = self.x.square().mul_int(3) * (self.y + self.y).inverse()
        x3 = slope.square() - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return BN254G2Element(self.group, x3, y3)

    def double(self) -> "BN254G2Element":
        return self._double()

    def __mul__(self, other: GroupElement) -> "BN254G2Element":
        if not isinstance(other, BN254G2Element):
            return NotImplemented
        if self.infinity:
            return other
        if other.infinity:
            return self
        if self.x == other.x:
            if self.y == other.y:
                return self._double()
            return self.group.identity()
        slope = (other.y - self.y) * (other.x - self.x).inverse()
        x3 = slope.square() - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return BN254G2Element(self.group, x3, y3)

    def _mul_raw(self, scalar: int) -> "BN254G2Element":
        result = self.group.identity()
        if scalar == 0:
            return result
        for bit in bin(scalar)[2:]:
            result = result._double()
            if bit == "1":
                result = result * self
        return result

    def __pow__(self, scalar: int) -> "BN254G2Element":
        return self._mul_raw(scalar % R)

    def inverse(self) -> "BN254G2Element":
        if self.infinity:
            return self
        return BN254G2Element(self.group, self.x, -self.y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BN254G2Element):
            return NotImplemented
        if self.infinity or other.infinity:
            return self.infinity == other.infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def to_bytes(self) -> bytes:
        if self.infinity:
            return bytes(128)
        return b"".join(
            c.to_bytes(32, "big")
            for c in (self.x.c0, self.x.c1, self.y.c0, self.y.c1)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BN254G2 {self.to_bytes().hex()[:16]}…>"


def _on_twist(x: Fp2, y: Fp2) -> bool:
    return y.square() == x.square() * x + B2


class BN254G2Group(Group):
    """The order-r subgroup of the sextic twist."""

    name = "bn254g2"
    order = R
    key_bits = 254

    def __init__(self) -> None:
        self._identity = BN254G2Element(self, Fp2.zero(), Fp2.zero(), infinity=True)
        self._generator = BN254G2Element(self, _GEN_X, _GEN_Y)

    def generator(self) -> BN254G2Element:
        return self._generator

    def identity(self) -> BN254G2Element:
        return self._identity

    def element_from_bytes(self, data: bytes) -> BN254G2Element:
        if len(data) != 128:
            raise SerializationError("bn254 G2 element must be 128 bytes")
        if data == bytes(128):
            return self.identity()
        coords = [int.from_bytes(data[i : i + 32], "big") for i in range(0, 128, 32)]
        if any(c >= P for c in coords):
            raise SerializationError("bn254 G2 coordinate out of range")
        x = Fp2(coords[0], coords[1])
        y = Fp2(coords[2], coords[3])
        if not _on_twist(x, y):
            raise SerializationError("bn254 G2 point not on twist")
        point = BN254G2Element(self, x, y)
        if not point._mul_raw(R).infinity:
            raise SerializationError("bn254 G2 point not in prime-order subgroup")
        return point

    raw_coords = 4

    def elements_to_raw(self, elements) -> list[tuple[int, ...]]:
        """Affine Fp2 coordinate tuples; infinity encodes as all zeros.

        G2 points are stored affine already, so no inversion batch is
        needed — the codec exists so G2 fixed-base tables persist like the
        other curves'.
        """
        raw: list[tuple[int, ...]] = []
        for element in elements:
            if element.infinity:
                raw.append((0, 0, 0, 0))
                continue
            raw.append(
                (element.x.c0, element.x.c1, element.y.c0, element.y.c1)
            )
        return raw

    def element_from_raw(self, coords) -> BN254G2Element:
        if all(c == 0 for c in coords):
            return self.identity()
        if any(not 0 <= c < P for c in coords):
            raise SerializationError("bn254 G2 raw coordinate out of range")
        x = Fp2(coords[0], coords[1])
        y = Fp2(coords[2], coords[3])
        if not _on_twist(x, y):
            raise SerializationError("bn254 G2 raw point not on twist")
        return BN254G2Element(self, x, y)

    def hash_to_element(self, data: bytes) -> BN254G2Element:
        """Try-and-increment x in Fp2, then clear the (2p − r) cofactor."""
        counter = 0
        while True:
            digest = hashlib.sha512(
                b"repro-bn254g2-h2c" + counter.to_bytes(4, "big") + data
            ).digest()
            counter += 1
            x = Fp2(
                int.from_bytes(digest[:32], "big"),
                int.from_bytes(digest[32:], "big"),
            )
            y2 = x.square() * x + B2
            if not y2.is_square():
                continue
            point = BN254G2Element(self, x, y2.sqrt())
            cleared = point._mul_raw(G2_COFACTOR)
            if not cleared.infinity:
                return cleared


_GROUP = BN254G2Group()


def bn254_g2() -> BN254G2Group:
    """Return the shared BN254 G2 group instance."""
    return _GROUP
