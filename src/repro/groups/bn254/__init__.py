"""BN254 (alt_bn128) pairing-friendly curve, built from scratch.

The paper's pairing-based schemes (BLS04, BZ03) run on "EC (Bn254), 254 bit"
(Table 3).  This subpackage provides:

* :mod:`fp` — the extension-field tower Fp2 = Fp[u]/(u²+1),
  Fp6 = Fp2[v]/(v³ − ξ) with ξ = 9 + u, Fp12 = Fp6[w]/(w² − v);
* :mod:`g1` — E(Fp): y² = x³ + 3, prime order r, cofactor 1;
* :mod:`g2` — the sextic D-type twist E′(Fp2): y² = x³ + 3/ξ;
* :mod:`pairing` — the optimal ate pairing with the
  Devegili–Scott–Dahab final exponentiation.
"""

from .fp import Fp2, Fp6, Fp12, P, R
from .g1 import BN254G1Group, bn254_g1
from .g2 import BN254G2Group, bn254_g2
from .pairing import pairing, pairing_check, BilinearGroup, bn254_pairing

__all__ = [
    "Fp2",
    "Fp6",
    "Fp12",
    "P",
    "R",
    "BN254G1Group",
    "BN254G2Group",
    "bn254_g1",
    "bn254_g2",
    "pairing",
    "pairing_check",
    "BilinearGroup",
    "bn254_pairing",
]
