"""Disk persistence for fixed-base exponentiation tables.

A :class:`~.precompute.FixedBaseTable` costs roughly three naive
exponentiations to build, and the bases that earn one (generators, public
keys, verification keys) are stable across process lifetimes.  This module
makes the tables survive restarts: each table serializes to one file under
``data_dir/tables/`` through the atomic, CRC-checked container of
:mod:`repro.storage.atomic`, and a node re-installs them at start so the
first request after a restart hits a warm cache (``loads`` instead of
``tables_built`` in :func:`~.precompute.precompute_stats`).

Entries are stored as *raw affine coordinates* via the per-group
``elements_to_raw``/``element_from_raw`` codec rather than the canonical
``to_bytes`` encoding.  The canonical decoders re-run subgroup checks
(a full scalar multiplication per point on ed25519 and BN254 G2) which
would make loading a table slower than rebuilding it; the raw codec
batch-normalizes with one Montgomery inversion on write and re-validates
only the curve equation on read.  That is safe because table files are
local, integrity-checked storage — never wire input.

Invalidation is structural: the container version is
:data:`TABLE_FORMAT_VERSION` (a bump discards every old file), the group
name is stored in the payload (an unknown or codec-less group discards the
file), and any CRC/shape/curve-equation failure discards the file and
lets the cache rebuild from scratch.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from ..errors import ConfigurationError, SerializationError, StorageError
from ..serialization import Reader, encode_bytes, encode_str
from ..storage.atomic import (
    pack_record,
    read_versioned,
    unpack_record,
    write_versioned,
)
from .precompute import FixedBaseTable
from .registry import get_group

#: Bumped whenever the payload layout (or the table semantics) change;
#: readers discard files carrying any other version.
TABLE_FORMAT_VERSION = 1

#: Fixed width of one raw coordinate.  Every supported group's field prime
#: is below 2^256, so 32 bytes is exact and keeps the layout seekable.
_COORD_BYTES = 32

TABLE_SUFFIX = ".tbl"

_DIGEST_DOMAIN = b"repro-fixed-base-table-v1"


def table_name(group_name: str, base_bytes: bytes) -> str:
    """Stable filename stem for a table: hash of (group, base)."""
    digest = hashlib.sha256(
        _DIGEST_DOMAIN + encode_str(group_name) + encode_bytes(base_bytes)
    )
    return digest.hexdigest()[:32]


def serialize_table(table: FixedBaseTable) -> bytes:
    """Encode a table into the versioned-container *payload* bytes."""
    group = table.base.group
    if getattr(group, "raw_coords", 0) <= 0:
        raise SerializationError(
            f"group {group.name!r} has no raw coordinate codec"
        )
    flat = [entry for row in table.rows() for entry in row]
    raw = group.elements_to_raw(flat)
    body = bytearray()
    for coords in raw:
        for coord in coords:
            body += coord.to_bytes(_COORD_BYTES, "big")
    return (
        encode_str(group.name)
        + encode_bytes(bytes((table.window,)))
        + encode_bytes(table.base.to_bytes())
        + encode_bytes(bytes(body))
    )


def deserialize_table(payload: bytes) -> FixedBaseTable:
    """Inverse of :func:`serialize_table`.

    Raises :class:`SerializationError` (or :class:`ConfigurationError` for
    an unknown group) on any mismatch — the caller treats that as "discard
    the file and rebuild", never as data to trust.
    """
    reader = Reader(payload)
    group_name = reader.read_str()
    window_bytes = reader.read_bytes()
    base_bytes = reader.read_bytes()
    body = reader.read_bytes()
    reader.finish()
    if len(window_bytes) != 1 or not 1 <= window_bytes[0] <= 16:
        raise SerializationError("table window out of range")
    window = window_bytes[0]
    group = get_group(group_name)
    coords_per_element = getattr(group, "raw_coords", 0)
    if coords_per_element <= 0:
        raise SerializationError(
            f"group {group_name!r} has no raw coordinate codec"
        )
    radix = 1 << window
    blocks = (group.order.bit_length() + window - 1) // window
    stride = coords_per_element * _COORD_BYTES
    if len(body) != blocks * radix * stride:
        raise SerializationError("table body has wrong size")
    elements = []
    for offset in range(0, len(body), stride):
        coords = tuple(
            int.from_bytes(
                body[offset + i * _COORD_BYTES : offset + (i + 1) * _COORD_BYTES],
                "big",
            )
            for i in range(coords_per_element)
        )
        elements.append(group.element_from_raw(coords))
    rows = [elements[b * radix : (b + 1) * radix] for b in range(blocks)]
    base = rows[0][1]
    if base.to_bytes() != base_bytes:
        raise SerializationError("table base does not match stored encoding")
    try:
        return FixedBaseTable.from_rows(base, window, rows)
    except ValueError as exc:
        raise SerializationError(str(exc)) from exc


def table_blob(table: FixedBaseTable) -> bytes:
    """Full container bytes (what a table file holds, and what the blob
    store ships to pool workers)."""
    return pack_record(serialize_table(table), TABLE_FORMAT_VERSION)


def table_from_blob(blob: bytes, source: str = "<blob>") -> FixedBaseTable:
    """Decode :func:`table_blob` output, enforcing the format version."""
    version, payload = unpack_record(blob, source=source)
    if version != TABLE_FORMAT_VERSION:
        raise StorageError(
            f"{source}: table format v{version}, expected v{TABLE_FORMAT_VERSION}"
        )
    return deserialize_table(payload)


class TableStore:
    """Directory of persisted fixed-base tables (``data_dir/tables/``)."""

    def __init__(self, directory: Path | str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, table: FixedBaseTable) -> Path:
        group = table.base.group
        stem = table_name(group.name, table.base.to_bytes())
        return self.directory / f"{stem}{TABLE_SUFFIX}"

    def save(self, table: FixedBaseTable) -> Path:
        """Atomically persist one table (overwrites any previous file)."""
        path = self.path_for(table)
        write_versioned(path, serialize_table(table), TABLE_FORMAT_VERSION)
        return path

    def save_all(self, tables) -> int:
        """Persist every serializable table not already on disk.

        Tables whose group lacks a raw codec are skipped, and existing
        files are left untouched (the content is deterministic for a given
        (group, base, window), so a present file is already correct).
        Returns the number of files written.
        """
        written = 0
        for table in tables:
            if getattr(table.base.group, "raw_coords", 0) <= 0:
                continue
            if self.path_for(table).exists():
                continue
            self.save(table)
            written += 1
        return written

    def load_all(self) -> tuple[list[FixedBaseTable], int]:
        """Read every table file; discard (delete) any that fail checks.

        Returns ``(tables, discarded_count)``.  A corrupted, truncated,
        version-bumped, or unknown-group file is unlinked so it cannot
        fail again on the next start.
        """
        loaded: list[FixedBaseTable] = []
        discarded = 0
        for path in sorted(self.directory.glob(f"*{TABLE_SUFFIX}")):
            try:
                version, payload = read_versioned(path)
                if version != TABLE_FORMAT_VERSION:
                    raise StorageError(
                        f"{path}: table format v{version}, "
                        f"expected v{TABLE_FORMAT_VERSION}"
                    )
                loaded.append(deserialize_table(payload))
            except (StorageError, SerializationError, ConfigurationError):
                discarded += 1
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        return loaded, discarded
