"""Exception hierarchy for the repro (Thetacrypt reproduction) library.

Every error raised by the library derives from :class:`ThetacryptError` so
applications can install a single catch-all handler around service calls.
"""

from __future__ import annotations


class ThetacryptError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ThetacryptError):
    """A node, deployment, or scheme was configured inconsistently."""


class SerializationError(ThetacryptError):
    """Raised when encoding or decoding a wire object fails."""


class CryptoError(ThetacryptError):
    """Base class for cryptographic failures."""


class InvalidShareError(CryptoError):
    """A partial result (decryption/signature/coin share) failed verification."""


class InvalidCiphertextError(CryptoError):
    """A ciphertext failed its validity check (CCA protection)."""


class InvalidSignatureError(CryptoError):
    """An assembled or partial signature failed verification."""


class InvalidProofError(InvalidShareError):
    """A zero-knowledge proof failed verification.

    Subclasses :class:`InvalidShareError` because every proof in this
    library authenticates a partial result (a decryption, signature, or coin
    share) — callers rejecting bad shares catch both uniformly.
    """


class ThresholdNotReachedError(CryptoError):
    """Fewer valid shares were supplied than the threshold requires."""


class DuplicateShareError(CryptoError):
    """Two shares with the same participant id were supplied to a combiner."""


class KeyManagementError(ThetacryptError):
    """A key id was unknown, duplicated, or incompatible with the request."""


class ProtocolError(ThetacryptError):
    """A threshold protocol instance violated the TRI state machine."""


class ProtocolAbortedError(ProtocolError):
    """A protocol instance aborted (e.g. FROST misbehaviour, DKG complaint).

    ``reason`` is a structured, machine-readable abort classification
    (``timeout`` / ``insufficient_shares`` / ``byzantine_detected`` /
    ``aborted`` / ``internal``) surfaced through ``stats()`` and the RPC
    error alongside the human-readable message.
    """

    def __init__(self, message: str = "", reason: str = "aborted"):
        super().__init__(message)
        self.reason = reason


class NetworkError(ThetacryptError):
    """A network layer component failed to deliver or receive a message."""


class StorageError(ThetacryptError):
    """Durable node state (keystore, journal, result cache) failed an
    integrity check or could not be read/written."""


class WalCorruptionError(StorageError):
    """A write-ahead-log record failed its checksum *mid-stream*.

    A torn **final** record is the expected signature of a crash during an
    append and is silently tolerated (replay stops there and the tail is
    truncated); a bad record with more data behind it means the file was
    damaged after the fact, which recovery must refuse to paper over.
    """


class RpcError(ThetacryptError):
    """The service layer rejected or failed an RPC call.

    ``reason`` carries the structured classification when there is one
    (e.g. ``overloaded`` for load-shed submissions, ``wrong_group`` for
    requests routed to a group that does not own the key) and
    ``retry_after`` a server-suggested backoff in seconds.  ``details``
    is a generic JSON-serializable dict for any further structured
    fields — a ``wrong_group`` error carries the owning group id and its
    member endpoints there.  All three travel through the RPC error
    response next to the human-readable message; fields outside this set
    do not survive the wire (see ``service/server.py``).
    """

    def __init__(
        self,
        message: str = "",
        reason: str | None = None,
        retry_after: float | None = None,
        details: dict | None = None,
    ):
        super().__init__(message)
        if reason is not None:
            self.reason = reason
        if retry_after is not None:
            self.retry_after = retry_after
        if details is not None:
            self.details = details


class SimulationError(ThetacryptError):
    """The discrete-event simulator was driven into an invalid state."""
