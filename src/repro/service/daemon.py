"""Run a Thetacrypt node as a standalone process.

The real-deployment entry point: one process per Θ-network member, TCP
transport between them, keys loaded from a keystore file produced by
``tools/deal_keys.py``::

    python3 -m repro.service.daemon --config node1/config.json \
                                    --keystore node1/keystore.json

The process serves RPC until SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal
from dataclasses import replace

from ..core.orchestration.precompute import PrecomputeConfig
from ..schemes.keystore import keystore_from_json
from .config import NodeConfig
from .node import ThetacryptNode

logger = logging.getLogger("repro.daemon")


def load_node(
    config_path: str,
    keystore_path: str,
    crypto_workers: int | None = None,
    offload_policy: str | None = None,
    coalesce_window: float | None = None,
    precompute_depth: int | None = None,
    math_backend: str | None = None,
) -> ThetacryptNode:
    """Build a node from its on-disk configuration and keystore.

    With a ``data_dir`` in the config, the node may already hold (durable)
    keys from a previous life; re-installing identical dealer output is a
    no-op (``install_key`` is idempotent for identical material).
    ``crypto_workers`` / ``offload_policy`` / ``coalesce_window`` /
    ``precompute_depth`` / ``math_backend`` override the config's pool
    sizing, offload behaviour, precompute pipeline, and math backend (the
    matching CLI flags).
    """
    with open(config_path) as handle:
        config = NodeConfig.from_json(handle.read())
    if crypto_workers is not None:
        config = replace(config, crypto_workers=crypto_workers)
    if offload_policy is not None:
        config = replace(config, offload_policy=offload_policy)
    if coalesce_window is not None:
        config = replace(config, coalesce_window=coalesce_window)
    if math_backend is not None:
        config = replace(config, math_backend=math_backend)
    if precompute_depth is not None:
        config = replace(
            config,
            precompute=(
                PrecomputeConfig(depth=precompute_depth)
                if precompute_depth > 0
                else None
            ),
        )
    node = ThetacryptNode(config)
    with open(keystore_path) as handle:
        shares = keystore_from_json(handle.read())
    for key_id, (scheme, share) in shares.items():
        node.install_key(key_id, scheme, share.public, share)
    return node


async def run_until_signal(
    node: ThetacryptNode, drain_timeout: float | None = None
) -> None:
    """Start the node and serve until SIGINT/SIGTERM.

    Graceful shutdown: on signal the daemon first *drains* — waits up to
    the configured timeout for in-flight instances to terminate (their
    results then land in the durable cache and the journal carries their
    terminal records) — and only then tears down RPC, transports, and the
    storage handles.  Instances still pending when the budget runs out are
    recovered as ``crash_recovery`` aborts on the next boot.
    """
    await node.start()
    host, port = node.rpc_address
    logger.info(
        "node %d up: rpc on %s:%d, %d keys installed",
        node.config.node_id,
        host,
        port,
        len(node.keys),
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX platforms
            pass
    await stop.wait()
    budget = drain_timeout if drain_timeout is not None else node.config.drain_timeout
    logger.info(
        "shutting down node %d (draining up to %.1fs)",
        node.config.node_id,
        budget,
    )
    drained = await node.drain(budget)
    if not drained:
        logger.warning(
            "node %d: %d instances still in flight after drain timeout",
            node.config.node_id,
            node.instances.active_count,
        )
    await node.stop()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Run one Thetacrypt node")
    parser.add_argument("--config", required=True, help="NodeConfig JSON file")
    parser.add_argument("--keystore", required=True, help="keystore JSON file")
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="seconds to wait for in-flight instances on shutdown "
        "(default: the config's drain_timeout)",
    )
    parser.add_argument(
        "--crypto-workers",
        type=int,
        default=None,
        help="worker processes for the crypto pool, overriding the "
        "config's crypto_workers (0 runs all crypto inline)",
    )
    parser.add_argument(
        "--offload-policy",
        choices=("adaptive", "always", "never"),
        default=None,
        help="how pool submission is decided, overriding the config's "
        "offload_policy (adaptive gates on cores/queue/latency EWMAs)",
    )
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=None,
        help="cross-request batching window in seconds, overriding the "
        "config's coalesce_window (0 disables coalescing)",
    )
    parser.add_argument(
        "--precompute-depth",
        type=int,
        default=None,
        help="enable the precompute pipeline with this per-(key, op) pool "
        "depth, overriding the config's precompute section (0 disables "
        "the pipeline)",
    )
    parser.add_argument(
        "--math-backend",
        choices=("auto", "python", "batched", "gmpy2"),
        default=None,
        help="big-int primitive backend, overriding the config's "
        "math_backend (auto prefers gmpy2 when importable, honouring "
        "the REPRO_MATH_BACKEND environment variable)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    node = load_node(
        args.config,
        args.keystore,
        crypto_workers=args.crypto_workers,
        offload_policy=args.offload_policy,
        coalesce_window=args.coalesce_window,
        precompute_depth=args.precompute_depth,
        math_backend=args.math_backend,
    )
    asyncio.run(run_until_signal(node, drain_timeout=args.drain_timeout))


if __name__ == "__main__":
    main()
