"""Node configuration: everything a Thetacrypt instance learns at start-up."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..core.orchestration.precompute import PrecomputeConfig
from ..errors import ConfigurationError
from ..network.faults import FaultPlan
from ..router.topology import Topology


@dataclass(frozen=True)
class PeerConfig:
    """Address book entry for one Θ-network member."""

    node_id: int
    host: str
    port: int


@dataclass(frozen=True)
class NodeConfig:
    """Start-up configuration of one node (paper §3.6: the network manager
    "sets up the needed components based on the configuration")."""

    node_id: int
    parties: int
    threshold: int
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    rpc_host: str = "127.0.0.1"
    rpc_port: int = 0
    peers: tuple[PeerConfig, ...] = ()
    transport: str = "tcp"  # "tcp" or "local"
    enable_tob: bool = True
    tob_sequencer: int = 1
    tob_block_interval: float = 0.0
    gossip_fanout: int | None = None
    instance_timeout: float = 60.0
    # §3.2: "RPC requests can be authenticated by exploiting the common
    # security context such that only the service node in the same security
    # domain is allowed to issue requests".  Empty string disables the check.
    rpc_auth_token: str = ""
    # Plain-HTTP Prometheus scrape endpoint (GET /metrics) on rpc_host.
    # None disables it; 0 binds an ephemeral port (see node.metrics_address).
    metrics_port: int | None = None
    # Seeded chaos scenario (docs/robustness.md): when set, the node wraps
    # its transport in a FaultyNetwork so the asyncio service and the
    # simulator can run the same deterministic fault schedules.
    fault_plan: FaultPlan | None = None
    # Durability root for this node (docs/robustness.md, "Durability &
    # recovery"): keystore snapshot, instance journal, and result cache
    # live under it, and start() runs crash recovery from it.  None keeps
    # the node memory-only (the pre-durability behaviour).
    data_dir: str | None = None
    # Overload shedding: reject new submissions once this many instances
    # are pending, with a structured ``overloaded`` error carrying
    # ``overload_retry_after`` as the client's backoff hint.  None never
    # sheds.
    max_pending_instances: int | None = None
    overload_retry_after: float = 0.25
    # Graceful shutdown: how long the daemon waits for in-flight instances
    # to finish before tearing the node down.
    drain_timeout: float = 5.0
    # Crypto worker-pool offload (docs/performance.md): spawn-context
    # worker processes for the schemes' pairing/modexp-heavy steps.  0
    # keeps every operation inline on the event loop.
    crypto_workers: int = 0
    # How pool submission is decided (docs/performance.md, "Adaptive
    # offload"): "adaptive" gates each op on core count, queue depth, and
    # the observed pool-vs-inline latency EWMAs; "always"/"never" force
    # the static PR-5 behaviour (benchmarks, tests).
    offload_policy: str = "adaptive"
    # Cross-request batching window, seconds: concurrent instances' pool
    # tasks arriving within it coalesce into one batched worker task.
    # 0 disables coalescing.
    coalesce_window: float = 0.002
    # Federation (docs/federation.md): which threshold group this node
    # belongs to ("" = the unsharded single-group deployment) and the
    # federation topology it should consult to redirect misrouted
    # requests.  With both set, a request for a key owned by another
    # group fails fast with a structured ``wrong_group`` error carrying
    # the owning group and its endpoints instead of an opaque
    # unknown-key failure.
    group_id: str = ""
    topology: Topology | None = None
    # Precompute pipeline (docs/performance.md, "Precompute pipeline"):
    # announce/refill/consume share pools that hide threshold latency for
    # announced requests.  None keeps the node strictly on-demand (the
    # pre-pipeline behaviour); kg20 nonce pools work either way.
    precompute: PrecomputeConfig | None = None
    # Math backend (docs/performance.md, "Math backends"): which big-int
    # primitive implementation the node selects at start.  "auto" picks
    # gmpy2 when importable, else the batched pure-Python backend; the
    # REPRO_MATH_BACKEND environment variable overrides both.
    math_backend: str = "auto"

    def __post_init__(self) -> None:
        if not 1 <= self.node_id <= self.parties:
            raise ConfigurationError(
                f"node id {self.node_id} outside 1..{self.parties}"
            )
        if self.threshold >= self.parties:
            raise ConfigurationError("threshold must be below the party count")
        if self.transport not in ("tcp", "local"):
            raise ConfigurationError(f"unknown transport {self.transport!r}")
        if self.metrics_port is not None and self.metrics_port < 0:
            raise ConfigurationError(
                f"metrics_port must be >= 0 (or None to disable), "
                f"got {self.metrics_port}"
            )
        if self.max_pending_instances is not None and self.max_pending_instances < 1:
            raise ConfigurationError(
                f"max_pending_instances must be >= 1 (or None to disable), "
                f"got {self.max_pending_instances}"
            )
        if self.overload_retry_after < 0:
            raise ConfigurationError("overload_retry_after must be >= 0")
        if self.drain_timeout < 0:
            raise ConfigurationError("drain_timeout must be >= 0")
        if self.crypto_workers < 0:
            raise ConfigurationError(
                f"crypto_workers must be >= 0 (0 disables the pool), "
                f"got {self.crypto_workers}"
            )
        from ..workers.policy import POLICY_MODES

        if self.offload_policy not in POLICY_MODES:
            raise ConfigurationError(
                f"offload_policy must be one of {POLICY_MODES}, "
                f"got {self.offload_policy!r}"
            )
        if self.coalesce_window < 0:
            raise ConfigurationError(
                f"coalesce_window must be >= 0 (0 disables coalescing), "
                f"got {self.coalesce_window}"
            )
        from ..mathutils.backends import BACKEND_NAMES

        if self.math_backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"math_backend must be one of {BACKEND_NAMES}, "
                f"got {self.math_backend!r}"
            )
        if self.topology is not None and self.group_id:
            # A node claiming federation membership must exist in the
            # topology it redirects against, or every redirect it emits
            # would name groups that cannot include it.
            if self.group_id not in self.topology.group_ids:
                raise ConfigurationError(
                    f"group_id {self.group_id!r} not in topology groups "
                    f"{self.topology.group_ids}"
                )

    def peer_map(self) -> dict[int, tuple[str, int]]:
        return {
            p.node_id: (p.host, p.port)
            for p in self.peers
            if p.node_id != self.node_id
        }

    def to_json(self) -> str:
        payload = asdict(self)
        payload["peers"] = [asdict(p) for p in self.peers]
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
        if self.topology is not None:
            payload["topology"] = self.topology.to_dict()
        if self.precompute is not None:
            payload["precompute"] = self.precompute.to_dict()
        return json.dumps(payload, indent=2)

    @staticmethod
    def from_json(text: str) -> "NodeConfig":
        payload = json.loads(text)
        peers = tuple(PeerConfig(**p) for p in payload.pop("peers", []))
        fanout = payload.pop("gossip_fanout", None)
        plan_payload = payload.pop("fault_plan", None)
        plan = FaultPlan.from_dict(plan_payload) if plan_payload else None
        topology_payload = payload.pop("topology", None)
        topology = (
            Topology.from_dict(topology_payload) if topology_payload else None
        )
        precompute_payload = payload.pop("precompute", None)
        precompute = (
            PrecomputeConfig.from_dict(precompute_payload)
            if precompute_payload
            else None
        )
        return NodeConfig(
            peers=peers,
            gossip_fanout=fanout,
            fault_plan=plan,
            topology=topology,
            precompute=precompute,
            **payload,
        )

    def with_auth(self, token: str) -> "NodeConfig":
        """Copy of this config with RPC authentication enabled."""
        from dataclasses import replace

        return replace(self, rpc_auth_token=token)


def make_local_configs(
    parties: int,
    threshold: int,
    base_port: int = 17000,
    rpc_base_port: int = 18000,
    host: str = "127.0.0.1",
    **overrides,
) -> list[NodeConfig]:
    """Build a consistent config set for an n-node deployment on one host."""
    peers = tuple(
        PeerConfig(i, host, base_port + i) for i in range(1, parties + 1)
    )
    return [
        NodeConfig(
            node_id=i,
            parties=parties,
            threshold=threshold,
            listen_host=host,
            listen_port=base_port + i,
            rpc_host=host,
            # rpc_base_port=0 requests OS-assigned ephemeral ports.
            rpc_port=rpc_base_port + i if rpc_base_port else 0,
            peers=peers,
            **overrides,
        )
        for i in range(1, parties + 1)
    ]
