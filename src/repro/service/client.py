"""RPC client for applications and the benchmarking orchestrator.

The paper's orchestrator "implements the gRPC client-side Thetacrypt API to
create and schedule requests to the Θ-network" (§4.1).  Because every node
must participate in a threshold operation, a request is fanned out to the
whole network; the client returns as soon as the first node reports the
assembled result, which is when the Θ-network has produced it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random

from ..errors import RpcError
from ..network.tcp import backoff_delay
from ..serialization import hexlify, unhexlify

#: Methods safe to retry blindly: reads, plus the protocol operations —
#: instance ids are derived deterministically from request content and
#: finalized results are cached (durably, on nodes with a data_dir), so a
#: repeated submission converges on the same instance instead of running
#: the protocol twice.  DKG/refresh mutate the key set and stay one-shot.
_IDEMPOTENT_METHODS = frozenset(
    {
        "decrypt",
        "sign",
        "flip_coin",
        "status",
        "encrypt",
        "verify_signature",
        "list_keys",
        "node_stats",
        "metrics",
        "ping",
    }
)


class _Connection:
    """One JSON-lines RPC connection with concurrent request support."""

    def __init__(self, host: str, port: int, auth_token: str = ""):
        self._host = host
        self._port = port
        self._auth_token = auth_token
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._listen_task: asyncio.Task | None = None
        self._lock = asyncio.Lock()

    async def _ensure(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        # Match the server's per-line limit: a ``metrics`` response is one
        # JSON line carrying the full Prometheus exposition, well past
        # asyncio's 64 KiB default under accumulated label cardinality.
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=1 << 20
        )
        self._listen_task = asyncio.get_running_loop().create_task(self._listen())

    async def _listen(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue
                if "error" in response:
                    error = RpcError(response["error"])
                    # Structured abort reason, when the server supplied one.
                    error.reason = response.get("error_reason")
                    # Overloaded nodes attach a backoff hint; it floors the
                    # retry delay in ThetacryptClient.call.
                    error.retry_after = response.get("retry_after")
                    future.set_exception(error)
                else:
                    future.set_result(response["result"])
        except (ConnectionError, OSError):
            pass  # abrupt peer death (RST): same treatment as a clean EOF
        finally:
            # Fail every waiting caller and drop the dead streams.  A
            # writer whose peer was SIGKILLed does not report is_closing(),
            # so without this reset _ensure would happily reuse the corpse
            # and the next call would wait forever on a response no
            # listener can deliver.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(RpcError("connection closed"))
            self._pending.clear()
            if self._writer is not None:
                self._writer.close()
            self._writer = None
            self._reader = None

    async def call(self, method: str, params: dict) -> dict:
        async with self._lock:
            await self._ensure()
            request_id = next(self._ids)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            assert self._writer is not None
            request = {"id": request_id, "method": method, "params": params}
            if self._auth_token:
                request["auth"] = self._auth_token
            self._writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await self._writer.drain()
        return await future

    async def close(self) -> None:
        if self._listen_task is not None:
            self._listen_task.cancel()
        if self._writer is not None:
            self._writer.close()


class ThetacryptClient:
    """Client-side view of a whole Θ-network."""

    def __init__(
        self,
        addresses: dict[int, tuple[str, int]],
        auth_token: str = "",
        max_retries: int = 3,
        retry_base: float = 0.05,
        retry_cap: float = 1.0,
    ):
        self._connections = {
            node_id: _Connection(host, port, auth_token)
            for node_id, (host, port) in addresses.items()
        }
        self._max_retries = max_retries
        self._retry_base = retry_base
        self._retry_cap = retry_cap
        self._retry_rng = random.Random()

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._connections)

    @staticmethod
    def _retriable(method: str, exc: Exception) -> bool:
        """Retry policy: idempotent methods only, and only for transient
        failures — connection loss, or a node shedding load."""
        if method not in _IDEMPOTENT_METHODS:
            return False
        if isinstance(exc, (ConnectionError, OSError)) and not isinstance(
            exc, RpcError
        ):
            return True
        if isinstance(exc, RpcError):
            return (
                getattr(exc, "reason", None) == "overloaded"
                or str(exc) == "connection closed"
            )
        return False

    async def call(self, node_id: int, method: str, params: dict) -> dict:
        """Invoke one node's RPC endpoint.

        Idempotent methods are retried on connection loss and on
        structured ``overloaded`` rejections, with exponential backoff +
        jitter (the transport's ``backoff_delay``); an ``overloaded``
        error's ``retry_after`` hint floors the delay.
        """
        if node_id not in self._connections:
            raise RpcError(f"unknown node {node_id}")
        connection = self._connections[node_id]
        attempt = 0
        while True:
            try:
                return await connection.call(method, params)
            except (RpcError, ConnectionError, OSError) as exc:
                if attempt >= self._max_retries or not self._retriable(
                    method, exc
                ):
                    raise
                delay = backoff_delay(
                    attempt,
                    self._retry_rng,
                    base=self._retry_base,
                    cap=self._retry_cap,
                )
                retry_after = getattr(exc, "retry_after", None)
                if retry_after:
                    delay = max(delay, retry_after)
            attempt += 1
            await asyncio.sleep(delay)

    async def broadcast(self, method: str, params: dict) -> dict[int, dict]:
        """Invoke every node; returns per-node results (exceptions included)."""
        results = await asyncio.gather(
            *(self.call(node_id, method, params) for node_id in self.node_ids),
            return_exceptions=True,
        )
        return dict(zip(self.node_ids, results))

    async def _threshold_op(self, method: str, params: dict) -> bytes:
        """Fan a request out and return the first assembled result."""
        tasks = [
            asyncio.ensure_future(self.call(node_id, method, params))
            for node_id in self.node_ids
        ]
        try:
            errors: list[Exception] = []
            for future in asyncio.as_completed(tasks):
                try:
                    result = await future
                except Exception as exc:  # noqa: BLE001 - try remaining nodes
                    errors.append(exc)
                    continue
                return unhexlify(result["result"])
            raise RpcError(f"all nodes failed: {errors}")
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- high-level convenience wrappers ------------------------------------------

    async def sign(self, key_id: str, message: bytes) -> bytes:
        return await self._threshold_op(
            "sign", {"key_id": key_id, "data": hexlify(message)}
        )

    async def decrypt(self, key_id: str, ciphertext: bytes, label: bytes = b"") -> bytes:
        return await self._threshold_op(
            "decrypt",
            {
                "key_id": key_id,
                "data": hexlify(ciphertext),
                "label": hexlify(label),
            },
        )

    async def flip_coin(self, key_id: str, name: bytes) -> bytes:
        return await self._threshold_op(
            "flip_coin", {"key_id": key_id, "data": hexlify(name)}
        )

    async def encrypt(
        self, key_id: str, plaintext: bytes, label: bytes = b"", node_id: int | None = None
    ) -> bytes:
        """Scheme-API encryption at one node (a local, public operation)."""
        target = node_id if node_id is not None else self.node_ids[0]
        result = await self.call(
            target,
            "encrypt",
            {
                "key_id": key_id,
                "data": hexlify(plaintext),
                "label": hexlify(label),
            },
        )
        return unhexlify(result["ciphertext"])

    async def verify_signature(
        self, key_id: str, message: bytes, signature: bytes, node_id: int | None = None
    ) -> bool:
        target = node_id if node_id is not None else self.node_ids[0]
        result = await self.call(
            target,
            "verify_signature",
            {
                "key_id": key_id,
                "data": hexlify(message),
                "signature": hexlify(signature),
            },
        )
        return bool(result["valid"])

    async def precompute(self, key_id: str, count: int) -> dict[int, dict]:
        return await self.broadcast(
            "precompute", {"key_id": key_id, "count": count}
        )

    async def refresh_key(self, key_id: str) -> bytes:
        """Proactive refresh on every node; returns the unchanged group key."""
        results = await self.broadcast("refresh_key", {"key_id": key_id})
        keys = set()
        for node_id, result in results.items():
            if isinstance(result, Exception):
                raise RpcError(f"node {node_id} failed refresh: {result}")
            keys.add(result["group_key"])
        if len(keys) != 1:
            raise RpcError(f"nodes disagree after refresh: {keys}")
        return unhexlify(keys.pop())

    async def node_stats(self, node_id: int | None = None) -> dict:
        """One node's health/latency snapshot (the ``node_stats`` method)."""
        target = node_id if node_id is not None else self.node_ids[0]
        return await self.call(target, "node_stats", {})

    async def metrics(self, node_id: int | None = None) -> str:
        """One node's Prometheus text exposition, fetched over RPC."""
        target = node_id if node_id is not None else self.node_ids[0]
        result = await self.call(target, "metrics", {})
        return result["text"]

    async def status(self, instance_id: str, node_id: int | None = None) -> dict:
        """One node's view of an instance, including its trace breakdown."""
        target = node_id if node_id is not None else self.node_ids[0]
        return await self.call(target, "status", {"instance_id": instance_id})

    async def run_dkg(
        self, key_id: str, scheme: str = "cks05", group: str = "ed25519"
    ) -> bytes:
        """Run distributed key generation on every node; returns the group key.

        All nodes participate; the call fails if any node reports a
        different group key (a serious inconsistency).
        """
        results = await self.broadcast(
            "run_dkg", {"key_id": key_id, "scheme": scheme, "group": group}
        )
        keys = set()
        for node_id, result in results.items():
            if isinstance(result, Exception):
                raise RpcError(f"node {node_id} failed DKG: {result}")
            keys.add(result["group_key"])
        if len(keys) != 1:
            raise RpcError(f"nodes disagree on the DKG group key: {keys}")
        return unhexlify(keys.pop())

    async def close(self) -> None:
        await asyncio.gather(
            *(conn.close() for conn in self._connections.values()),
            return_exceptions=True,
        )
