"""RPC client for applications and the benchmarking orchestrator.

The paper's orchestrator "implements the gRPC client-side Thetacrypt API to
create and schedule requests to the Θ-network" (§4.1).  Because every node
must participate in a threshold operation, a request is fanned out to the
whole network; the client returns as soon as the first node reports the
assembled result, which is when the Θ-network has produced it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random

from ..errors import RpcError
from ..network.tcp import backoff_delay
from ..serialization import hexlify, unhexlify

#: Methods safe to retry blindly: reads, plus the protocol operations —
#: instance ids are derived deterministically from request content and
#: finalized results are cached (durably, on nodes with a data_dir), so a
#: repeated submission converges on the same instance instead of running
#: the protocol twice.  DKG/refresh mutate the key set and stay one-shot.
_IDEMPOTENT_METHODS = frozenset(
    {
        "decrypt",
        "sign",
        "flip_coin",
        "status",
        "encrypt",
        "verify_signature",
        "list_keys",
        "node_stats",
        "metrics",
        "ping",
    }
)


class _Connection:
    """One JSON-lines RPC connection with concurrent request support."""

    def __init__(self, host: str, port: int, auth_token: str = ""):
        self._host = host
        self._port = port
        self._auth_token = auth_token
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._listen_task: asyncio.Task | None = None
        self._lock = asyncio.Lock()

    async def _ensure(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        # Match the server's per-line limit: a ``metrics`` response is one
        # JSON line carrying the full Prometheus exposition, well past
        # asyncio's 64 KiB default under accumulated label cardinality.
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=1 << 20
        )
        self._listen_task = asyncio.get_running_loop().create_task(self._listen())

    async def _listen(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue
                if "error" in response:
                    error = RpcError(response["error"])
                    # Structured abort reason, when the server supplied one.
                    error.reason = response.get("error_reason")
                    # Overloaded nodes attach a backoff hint; it floors the
                    # retry delay in ThetacryptClient.call.
                    error.retry_after = response.get("retry_after")
                    # Generic structured payload (e.g. a wrong_group
                    # redirect's owning group + endpoints).
                    error.details = response.get("error_details")
                    future.set_exception(error)
                else:
                    future.set_result(response["result"])
        except (ConnectionError, OSError):
            pass  # abrupt peer death (RST): same treatment as a clean EOF
        finally:
            # Fail every waiting caller and drop the dead streams.  A
            # writer whose peer was SIGKILLed does not report is_closing(),
            # so without this reset _ensure would happily reuse the corpse
            # and the next call would wait forever on a response no
            # listener can deliver.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(RpcError("connection closed"))
            self._pending.clear()
            if self._writer is not None:
                self._writer.close()
            self._writer = None
            self._reader = None

    async def call(self, method: str, params: dict) -> dict:
        async with self._lock:
            await self._ensure()
            request_id = next(self._ids)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            assert self._writer is not None
            request = {"id": request_id, "method": method, "params": params}
            if self._auth_token:
                request["auth"] = self._auth_token
            self._writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await self._writer.drain()
        return await future

    async def close(self) -> None:
        if self._listen_task is not None:
            self._listen_task.cancel()
        if self._writer is not None:
            self._writer.close()


class ThetacryptClient:
    """Client-side view of a whole Θ-network — or of a federation.

    Two shapes (docs/federation.md):

    * ``addresses`` — the classic single-group view: one connection per
      node, threshold ops fanned to all of them.  Pointing this at a
      router's address also just works: the router speaks the same RPC
      protocol and fans out on the caller's behalf.
    * ``topology`` — client-side routing: one sub-client per threshold
      group; each request goes only to the group that owns its key (the
      topology's pinned assignments, else the consistent-hash ring).  On
      a ``wrong_group`` redirect the client follows the owning group
      named in the error payload (bounded by ``max_redirects``, counted
      as ``repro_router_redirects_total{source="client"}``), and on
      whole-group connection loss it re-resolves and retries idempotent
      methods with the transport's jittered backoff.
    """

    def __init__(
        self,
        addresses: dict[int, tuple[str, int]] | None = None,
        auth_token: str = "",
        max_retries: int = 3,
        retry_base: float = 0.05,
        retry_cap: float = 1.0,
        topology=None,
        max_redirects: int = 2,
    ):
        self._connections = {
            node_id: _Connection(host, port, auth_token)
            for node_id, (host, port) in (addresses or {}).items()
        }
        self._max_retries = max_retries
        self._retry_base = retry_base
        self._retry_cap = retry_cap
        self._retry_rng = random.Random()
        self._topology = topology
        self._max_redirects = max_redirects
        self._groups: dict[str, "ThetacryptClient"] = {}
        if topology is not None:
            self._groups = {
                spec.group_id: ThetacryptClient(
                    spec.rpc_endpoints(),
                    auth_token=auth_token,
                    max_retries=max_retries,
                    retry_base=retry_base,
                    retry_cap=retry_cap,
                )
                for spec in topology.groups
            }

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._connections)

    @staticmethod
    def _retriable(method: str, exc: Exception) -> bool:
        """Retry policy: idempotent methods only, and only for transient
        failures — connection loss, or a node shedding load."""
        if method not in _IDEMPOTENT_METHODS:
            return False
        if isinstance(exc, (ConnectionError, OSError)) and not isinstance(
            exc, RpcError
        ):
            return True
        if isinstance(exc, RpcError):
            return (
                getattr(exc, "reason", None) == "overloaded"
                or str(exc) == "connection closed"
            )
        return False

    async def call(self, node_id: int, method: str, params: dict) -> dict:
        """Invoke one node's RPC endpoint.

        Idempotent methods are retried on connection loss and on
        structured ``overloaded`` rejections, with exponential backoff +
        jitter (the transport's ``backoff_delay``); an ``overloaded``
        error's ``retry_after`` hint floors the delay.
        """
        if node_id not in self._connections:
            raise RpcError(f"unknown node {node_id}")
        connection = self._connections[node_id]
        attempt = 0
        while True:
            try:
                return await connection.call(method, params)
            except (RpcError, ConnectionError, OSError) as exc:
                if attempt >= self._max_retries or not self._retriable(
                    method, exc
                ):
                    raise
                delay = backoff_delay(
                    attempt,
                    self._retry_rng,
                    base=self._retry_base,
                    cap=self._retry_cap,
                )
                retry_after = getattr(exc, "retry_after", None)
                if retry_after:
                    delay = max(delay, retry_after)
            attempt += 1
            await asyncio.sleep(delay)

    async def broadcast(self, method: str, params: dict) -> dict[int, dict]:
        """Invoke every node; returns per-node results (exceptions included)."""
        results = await asyncio.gather(
            *(self.call(node_id, method, params) for node_id in self.node_ids),
            return_exceptions=True,
        )
        return dict(zip(self.node_ids, results))

    async def _threshold_op(self, method: str, params: dict) -> bytes:
        """Fan a request out and return the first assembled result.

        A ``wrong_group`` rejection fails the whole fan-out immediately:
        the group's members share one keystore, so one redirect speaks
        for all of them and waiting for the rest only adds latency.
        """
        if self._topology is not None:
            return await self._routed_threshold_op(method, params)
        tasks = [
            asyncio.ensure_future(self.call(node_id, method, params))
            for node_id in self.node_ids
        ]
        try:
            errors: list[Exception] = []
            for future in asyncio.as_completed(tasks):
                try:
                    result = await future
                except Exception as exc:  # noqa: BLE001 - try remaining nodes
                    if getattr(exc, "reason", None) == "wrong_group":
                        raise
                    errors.append(exc)
                    continue
                return unhexlify(result["result"])
            raise RpcError(f"all nodes failed: {errors}")
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- client-side federation routing ----------------------------------------

    def group_client(self, group_id: str) -> "ThetacryptClient":
        """The sub-client of one federated group (topology mode only)."""
        if group_id not in self._groups:
            raise RpcError(f"unknown group {group_id!r}")
        return self._groups[group_id]

    def owner_of(self, key_id: str) -> str:
        """The group this client would route ``key_id`` to."""
        if self._topology is None:
            raise RpcError("client has no topology to route by")
        return self._topology.owner_of(key_id)

    def _redirect_target(self, exc: Exception) -> str | None:
        """The group a ``wrong_group`` error redirects to, if followable."""
        if getattr(exc, "reason", None) != "wrong_group":
            return None
        details = getattr(exc, "details", None) or {}
        target = details.get("group")
        return target if target in self._groups else None

    @staticmethod
    def _group_loss(exc: Exception) -> bool:
        """Whole-group transient failure: every member connection-lost."""
        return isinstance(exc, RpcError) and str(exc).startswith(
            "all nodes failed"
        )

    async def _routed(self, key_id: str, op, *, idempotent: bool):
        """Run ``op(group_client)`` against the key's owning group.

        Follows ``wrong_group`` redirects (bounded by ``max_redirects``)
        and, for idempotent operations, re-resolves and retries on
        whole-group connection loss with jittered backoff — the durable
        result cache on the nodes makes the repeated submission converge
        on the same instance.
        """
        from ..telemetry import client_redirects_counter

        assert self._topology is not None
        group = self._topology.owner_of(key_id)
        redirects = 0
        attempt = 0
        while True:
            client = self._groups.get(group)
            if client is None:
                raise RpcError(
                    f"topology names no group {group!r} for key {key_id!r}"
                )
            try:
                return await op(client)
            except (RpcError, ConnectionError, OSError) as exc:
                target = self._redirect_target(exc)
                if (
                    target is not None
                    and target != group
                    and redirects < self._max_redirects
                ):
                    client_redirects_counter().inc()
                    group = target
                    redirects += 1
                    continue
                if (
                    idempotent
                    and self._group_loss(exc)
                    and attempt < self._max_retries
                ):
                    delay = backoff_delay(
                        attempt,
                        self._retry_rng,
                        base=self._retry_base,
                        cap=self._retry_cap,
                    )
                    attempt += 1
                    await asyncio.sleep(delay)
                    # Re-resolve: a refreshed topology (or a pinned
                    # override) may have moved the key while we backed off.
                    group = self._topology.owner_of(key_id)
                    continue
                raise

    async def _routed_threshold_op(self, method: str, params: dict) -> bytes:
        return await self._routed(
            params["key_id"],
            lambda client: client._threshold_op(method, params),
            idempotent=method in _IDEMPOTENT_METHODS,
        )

    # -- high-level convenience wrappers ------------------------------------------

    async def sign(self, key_id: str, message: bytes) -> bytes:
        return await self._threshold_op(
            "sign", {"key_id": key_id, "data": hexlify(message)}
        )

    async def decrypt(self, key_id: str, ciphertext: bytes, label: bytes = b"") -> bytes:
        return await self._threshold_op(
            "decrypt",
            {
                "key_id": key_id,
                "data": hexlify(ciphertext),
                "label": hexlify(label),
            },
        )

    async def flip_coin(self, key_id: str, name: bytes) -> bytes:
        return await self._threshold_op(
            "flip_coin", {"key_id": key_id, "data": hexlify(name)}
        )

    async def encrypt(
        self, key_id: str, plaintext: bytes, label: bytes = b"", node_id: int | None = None
    ) -> bytes:
        """Scheme-API encryption at one node (a local, public operation)."""
        if self._topology is not None:
            return await self._routed(
                key_id,
                lambda c: c.encrypt(key_id, plaintext, label, node_id=node_id),
                idempotent=True,
            )
        target = node_id if node_id is not None else self.node_ids[0]
        result = await self.call(
            target,
            "encrypt",
            {
                "key_id": key_id,
                "data": hexlify(plaintext),
                "label": hexlify(label),
            },
        )
        return unhexlify(result["ciphertext"])

    async def verify_signature(
        self, key_id: str, message: bytes, signature: bytes, node_id: int | None = None
    ) -> bool:
        if self._topology is not None:
            return await self._routed(
                key_id,
                lambda c: c.verify_signature(
                    key_id, message, signature, node_id=node_id
                ),
                idempotent=True,
            )
        target = node_id if node_id is not None else self.node_ids[0]
        result = await self.call(
            target,
            "verify_signature",
            {
                "key_id": key_id,
                "data": hexlify(message),
                "signature": hexlify(signature),
            },
        )
        return bool(result["valid"])

    async def precompute(
        self,
        key_id: str,
        count: int | None = None,
        items: list[bytes] | None = None,
        label: bytes = b"",
    ) -> dict[int, dict]:
        """Fill this key's precompute pools on every node.

        ``count=N`` runs the kg20 nonce preprocessing round; ``items``
        announces upcoming request payloads (ciphertexts to decrypt,
        messages to sign, coin names) so the nodes stage — and with eager
        pipelining, fully execute — them ahead of demand.
        """
        if (count is None) == (items is None):
            raise RpcError("precompute takes exactly one of count / items")
        if self._topology is not None:
            return await self._routed(
                key_id,
                lambda c: c.precompute(key_id, count, items, label),
                idempotent=True,
            )
        if items is not None:
            params = {
                "key_id": key_id,
                "items": [hexlify(item) for item in items],
                "label": hexlify(label),
            }
        else:
            params = {"key_id": key_id, "count": count}
        return await self.broadcast("precompute", params)

    async def refresh_key(self, key_id: str) -> bytes:
        """Proactive refresh on every node; returns the unchanged group key."""
        if self._topology is not None:
            # Key mutation: route to the owning group, no blind retries.
            return await self._routed(
                key_id, lambda c: c.refresh_key(key_id), idempotent=False
            )
        results = await self.broadcast("refresh_key", {"key_id": key_id})
        keys = set()
        for node_id, result in results.items():
            if isinstance(result, Exception):
                raise RpcError(f"node {node_id} failed refresh: {result}")
            keys.add(result["group_key"])
        if len(keys) != 1:
            raise RpcError(f"nodes disagree after refresh: {keys}")
        return unhexlify(keys.pop())

    async def node_stats(self, node_id: int | None = None) -> dict:
        """One node's health/latency snapshot (the ``node_stats`` method)."""
        target = node_id if node_id is not None else self.node_ids[0]
        return await self.call(target, "node_stats", {})

    async def metrics(self, node_id: int | None = None) -> str:
        """One node's Prometheus text exposition, fetched over RPC."""
        target = node_id if node_id is not None else self.node_ids[0]
        result = await self.call(target, "metrics", {})
        return result["text"]

    async def status(self, instance_id: str, node_id: int | None = None) -> dict:
        """One node's view of an instance, including its trace breakdown."""
        target = node_id if node_id is not None else self.node_ids[0]
        return await self.call(target, "status", {"instance_id": instance_id})

    async def run_dkg(
        self, key_id: str, scheme: str = "cks05", group: str = "ed25519"
    ) -> bytes:
        """Run distributed key generation on every node; returns the group key.

        All nodes participate; the call fails if any node reports a
        different group key (a serious inconsistency).
        """
        if self._topology is not None:
            # The new key lands on whichever group the ring assigns it to.
            return await self._routed(
                key_id,
                lambda c: c.run_dkg(key_id, scheme=scheme, group=group),
                idempotent=False,
            )
        results = await self.broadcast(
            "run_dkg", {"key_id": key_id, "scheme": scheme, "group": group}
        )
        keys = set()
        for node_id, result in results.items():
            if isinstance(result, Exception):
                raise RpcError(f"node {node_id} failed DKG: {result}")
            keys.add(result["group_key"])
        if len(keys) != 1:
            raise RpcError(f"nodes disagree on the DKG group key: {keys}")
        return unhexlify(keys.pop())

    async def close(self) -> None:
        await asyncio.gather(
            *(conn.close() for conn in self._connections.values()),
            *(client.close() for client in self._groups.values()),
            return_exceptions=True,
        )
