"""RPC server: the node-side of the service layer.

JSON-lines framing (one request object per line, matching response carrying
the same ``id``).  Two endpoint families, as in §3.4:

Protocol API (black-box threshold protocol execution):
  ``decrypt``, ``sign``, ``flip_coin``, ``precompute``, ``status``

Scheme API (direct primitive access):
  ``encrypt``, ``verify_signature``, ``list_keys``

Observability: every request is timed into the node's metric registry
(per-method latency histograms, in-flight gauge) and the protocol methods
run inside a fresh trace context that the executor inherits; the
``metrics`` method returns the node's Prometheus exposition in-band.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import TYPE_CHECKING

from ..errors import ThetacryptError
from ..serialization import hexlify, unhexlify
from ..telemetry import RpcMetrics, start_trace

if TYPE_CHECKING:  # pragma: no cover
    from .node import ThetacryptNode

logger = logging.getLogger(__name__)

#: Methods that launch a threshold protocol instance (traced end to end).
_PROTOCOL_METHODS = frozenset(
    {"decrypt", "sign", "flip_coin", "run_dkg", "refresh_key", "precompute"}
)

#: Per-line stream limit for the JSON-lines framing.  The in-band
#: ``metrics`` response carries a node's whole Prometheus exposition on
#: one line, which outgrows asyncio's 64 KiB default once label
#: cardinality accumulates (many schemes × ops × outcomes per counter).
RPC_LINE_LIMIT = 1 << 20


class RpcServer:
    """Per-node RPC listener."""

    def __init__(self, node: "ThetacryptNode", host: str, port: int):
        self._node = node
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._metrics = RpcMetrics(node.registry)

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            return self._host, self._port
        sock = self._server.sockets[0]
        return sock.getsockname()[0], sock.getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._port, limit=RPC_LINE_LIMIT
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Await the cancelled handlers: returning while they unwind would
        # skip their cleanup and emit "Task was destroyed but it is pending".
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._metrics.connections.inc()
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # abrupt client disconnect; the finally closes the writer
        finally:
            # close() alone: wait_closed() can hang on an abruptly-dropped
            # peer, pinning the connection task until loop teardown.
            writer.close()

    def _check_auth(self, request: dict) -> None:
        expected = self._node.config.rpc_auth_token
        if expected and request.get("auth") != expected:
            raise ThetacryptError(
                "unauthorized: request lacks the security-domain token"
            )

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = None
        method = ""
        outcome = "ok"
        started = time.perf_counter()
        self._metrics.inflight.inc()
        try:
            try:
                request = json.loads(line)
                request_id = request.get("id")
                method = str(request.get("method", ""))
                self._check_auth(request)
                result = await self._dispatch(method, request.get("params", {}))
                response = {"id": request_id, "result": result}
            except ThetacryptError as exc:
                outcome = "error"
                response = {"id": request_id, "error": str(exc)}
                # Structured abort classification (timeout /
                # insufficient_shares / byzantine_detected / ...) travels
                # next to the human-readable message.
                reason = getattr(exc, "reason", None)
                if reason is not None:
                    response["error_reason"] = reason
                # Overload shedding: the server's backoff hint (seconds)
                # rides with the error so clients can pace their retries.
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    response["retry_after"] = retry_after
                # Generic structured payload (no field allowlist): e.g. a
                # wrong_group redirect's owning group + endpoints.  Must
                # be JSON-serializable; anything else is dropped rather
                # than failing the error response itself.
                details = getattr(exc, "details", None)
                if details is not None:
                    try:
                        json.dumps(details)
                    except (TypeError, ValueError):
                        logger.warning(
                            "dropping non-serializable error details for %s",
                            method,
                        )
                    else:
                        response["error_details"] = details
            except Exception as exc:  # noqa: BLE001 - report malformed requests
                logger.exception("rpc failure")
                outcome = "internal"
                response = {"id": request_id, "error": f"internal error: {exc}"}
        finally:
            self._metrics.inflight.dec()
            self._metrics.requests.labels(method or "<unparsed>", outcome).inc()
            self._metrics.latency.labels(method or "<unparsed>").observe(
                time.perf_counter() - started
            )
        async with write_lock:
            if writer.is_closing():
                return  # client went away while we were handling the request
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except ConnectionError:
                pass

    async def _dispatch(self, method: str, params: dict) -> dict:
        if method in _PROTOCOL_METHODS:
            # The executor task created under this context adopts the trace,
            # so the instance's per-round spans land in one breakdown with
            # the RPC-level timing.
            with start_trace(f"rpc:{method}") as trace:
                with trace.span(f"rpc:{method}"):
                    return await self._dispatch_inner(method, params)
        return await self._dispatch_inner(method, params)

    async def _dispatch_inner(self, method: str, params: dict) -> dict:
        node = self._node
        # ------ protocol API ------
        if method in ("decrypt", "sign", "flip_coin"):
            kind = {"decrypt": "decrypt", "sign": "sign", "flip_coin": "coin"}[method]
            started = time.monotonic()
            result = await node.run_request(
                kind,
                params["key_id"],
                unhexlify(params["data"]),
                unhexlify(params.get("label", "")),
            )
            return {
                "result": hexlify(result),
                "latency": time.monotonic() - started,
            }
        if method == "run_dkg":
            group_key = await node.run_dkg(
                params["key_id"],
                scheme=params.get("scheme", "cks05"),
                group_name=params.get("group", "ed25519"),
            )
            return {"group_key": group_key}
        if method == "refresh_key":
            group_key = await node.refresh_key(params["key_id"])
            return {"group_key": group_key}
        if method == "precompute":
            # Two families behind one method: kg20 nonce batches (count=N,
            # the original API) and the generic announce of upcoming
            # requests (items=[hex, ...]) that stages shares per instance.
            if "items" in params:
                report = await node.precompute_requests(
                    params["key_id"],
                    [unhexlify(item) for item in params["items"]],
                    unhexlify(params.get("label", "")),
                )
                return report
            available = await node.precompute_frost(
                params["key_id"], int(params["count"])
            )
            return {"available": available}
        if method == "status":
            record = node.instances.record(params["instance_id"])
            return {
                "instance_id": record.instance_id,
                "scheme": record.scheme,
                "status": record.status.value,
                "latency": record.latency,
                "error": record.error,
                "abort_reason": record.abort_reason,
                # Per-round/per-hop timing breakdown recorded by the executor.
                "trace": record.trace_report(),
            }
        # ------ scheme API ------
        if method == "encrypt":
            ciphertext = node.scheme_encrypt(
                params["key_id"],
                unhexlify(params["data"]),
                unhexlify(params.get("label", "")),
            )
            return {"ciphertext": hexlify(ciphertext)}
        if method == "verify_signature":
            valid = node.scheme_verify_signature(
                params["key_id"],
                unhexlify(params["data"]),
                unhexlify(params["signature"]),
            )
            return {"valid": valid}
        if method == "list_keys":
            return {"keys": node.key_info()}
        if method == "node_stats":
            # Monitoring endpoint (the paper co-locates a Prometheus server
            # per node; this is the equivalent scrape target).
            return node.stats()
        if method == "metrics":
            # The same Prometheus document the HTTP scrape endpoint serves,
            # returned in-band for clients already holding an RPC connection.
            return {"text": node.render_metrics()}
        if method == "ping":
            return {"node_id": node.config.node_id}
        raise ThetacryptError(f"unknown method {method!r}")
