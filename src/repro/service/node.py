"""The Thetacrypt node: service + core + network wired together.

"Each node runs a stateful Thetacrypt instance in a dedicated process.
Applications invoke the service at one node through a remote procedure call"
(§3.2).  The node derives deterministic instance ids from request content so
that all n nodes working on the same request converge on the same protocol
instance without extra coordination.
"""

from __future__ import annotations

import asyncio
import logging
from pathlib import Path

from ..core.messages import Channel
from ..core.orchestration import (
    InstanceManager,
    InstanceRecord,
    KeyManager,
    PrecomputeJob,
    PrecomputeService,
)
from ..core.orchestration.precompute import derive_instance_id
from ..core.protocols import (
    DkgProtocol,
    FrostPrecomputeProtocol,
    FrostProtocol,
    NonInteractiveProtocol,
    OperationRequest,
    make_operation,
)
from ..groups.registry import get_group
from ..errors import ConfigurationError, KeyManagementError, RpcError
from ..network.faults import FaultyNetwork
from ..network.interfaces import P2PNetwork
from ..network.local import LocalHub
from ..network.manager import NetworkManager
from ..network.tcp import TcpP2P
from ..schemes.base import SCHEME_TABLE, SchemeKind, get_scheme
from ..schemes.keystore import export_key_share
from ..serialization import hexlify
from ..storage import DurableKeystore, DurableResultCache, WriteAheadLog
from ..telemetry import (
    EventLoopLagSampler,
    MetricRegistry,
    MetricsHttpServer,
    StorageMetrics,
    default_registry,
    register_crypto_cache_collector,
    register_fixedbase_collector,
    register_math_backend_collector,
    render_text,
    summarize,
)
from ..core.orchestration.coalescing import CryptoCoalescer
from ..workers import CryptoPool
from ..workers.policy import OffloadPolicy
from .config import NodeConfig
from .server import RpcServer

logger = logging.getLogger(__name__)

# derive_instance_id moved to core.orchestration.precompute (the pool is
# keyed by it); re-exported here for its long-standing import path.
__all__ = ["ThetacryptNode", "derive_instance_id"]

#: Scheme kind → the protocol-API operation it serves.
_KIND_TO_OP = {"cipher": "decrypt", "signature": "sign", "coin": "coin"}


class ThetacryptNode:
    """One Θ-network member."""

    def __init__(
        self,
        config: NodeConfig,
        transport: P2PNetwork | None = None,
        tob=None,
        crypto_pool: CryptoPool | None = None,
    ):
        self.config = config
        # Math backend (docs/performance.md, "Math backends"): selected
        # before any crypto object is touched so every primitive this node
        # computes — inline, pooled, or precomputed — goes through it.
        # "auto" honours the REPRO_MATH_BACKEND environment variable.
        from ..mathutils.backends import set_backend

        set_backend(config.math_backend)
        # Durability (docs/robustness.md): with a data_dir the node owns a
        # crash-safe keystore snapshot, an instance-lifecycle journal, and
        # an idempotent-result cache; previously persisted key shares are
        # reloaded here, before install_key runs.
        self._keystore: DurableKeystore | None = None
        self._journal: WriteAheadLog | None = None
        self._results: DurableResultCache | None = None
        self._storage_metrics: StorageMetrics | None = None
        self._recovery: dict = {}
        self._table_store = None
        if config.data_dir is not None:
            data_dir = Path(config.data_dir)
            data_dir.mkdir(parents=True, exist_ok=True)
            self._keystore = DurableKeystore(data_dir / "keystore.bin")
            self._journal = WriteAheadLog(data_dir / "journal")
            self._results = DurableResultCache(data_dir / "results")
            # Fixed-base tables persist alongside the other durable state
            # (docs/performance.md, "Math backends"): a restart re-installs
            # them instead of rebuilding.
            from ..groups import TableStore

            self._table_store = TableStore(data_dir / "tables")
        self.keys = KeyManager(store=self._keystore)
        if transport is None:
            if config.transport != "tcp":
                raise ConfigurationError(
                    "non-tcp transports must be supplied explicitly "
                    "(e.g. a LocalHub endpoint)"
                )
            transport = TcpP2P(
                config.node_id,
                config.listen_host,
                config.listen_port,
                config.peer_map(),
            )
        if config.fault_plan is not None:
            # Chaos mode: the fault wrapper sits directly above the raw
            # transport, below the manager's channels and any gossip
            # overlay, so every wire frame passes through the plan.
            transport = FaultyNetwork(transport, config.fault_plan)
        # ``tob`` lets a host platform supply its own total-order channel
        # (the proxy deployment of Fig. 1); otherwise the node runs the
        # built-in sequencer TOB when enabled.
        self.network = NetworkManager(
            transport,
            enable_tob=config.enable_tob,
            sequencer_id=config.tob_sequencer,
            tob_block_interval=config.tob_block_interval,
            gossip_fanout=config.gossip_fanout,
            tob=tob,
        )
        # Per-node metric registry: keeps this node's request metrics
        # isolated when several nodes share one process; process-wide
        # instruments (transports, crypto caches) live in the default
        # registry and are merged into this node's exposition.
        self.registry = MetricRegistry()
        register_crypto_cache_collector(default_registry())
        register_fixedbase_collector(default_registry())
        register_math_backend_collector(default_registry())
        if config.data_dir is not None:
            self._storage_metrics = StorageMetrics(self.registry)
        # Crypto worker pool (docs/performance.md): an injected pool lets
        # several in-process nodes share one set of workers (they share
        # this host's cores anyway); otherwise the node owns a private
        # pool sized by config.crypto_workers — and only an owned pool is
        # closed in stop(), injected ones belong to the injector.
        self._owns_pool = crypto_pool is None and config.crypto_workers > 0
        if crypto_pool is not None:
            self.crypto_pool: CryptoPool | None = crypto_pool
        elif config.crypto_workers > 0:
            self.crypto_pool = CryptoPool(
                config.crypto_workers,
                registry=self.registry,
                policy=OffloadPolicy(mode=config.offload_policy),
            )
        else:
            self.crypto_pool = None
        # Cross-request batching over the pool (docs/performance.md):
        # concurrent instances' share creations/verifications within the
        # window coalesce into one batched worker task.
        self._coalescer: CryptoCoalescer | None = None
        if self.crypto_pool is not None and config.coalesce_window > 0:
            self._coalescer = CryptoCoalescer(
                self.crypto_pool, window=config.coalesce_window
            )
        # Event-loop lag heartbeat: the direct measure of how long inline
        # crypto blocks everything else on this node's loop.
        self._lag_sampler = EventLoopLagSampler(self.registry)
        self.instances = InstanceManager(
            config.node_id,
            self.network.dispatch,
            default_timeout=config.instance_timeout,
            registry=self.registry,
            journal=self._journal,
            results=self._results,
            max_pending=config.max_pending_instances,
            overload_retry_after=config.overload_retry_after,
            crypto_pool=self.crypto_pool,
            coalescer=self._coalescer,
        )
        if self._coalescer is not None:
            self._coalescer.bind_metrics(self.instances.metrics)
        self.network.set_protocol_handler(self.instances.handle_network_message)
        self.rpc = RpcServer(self, config.rpc_host, config.rpc_port)
        self._metrics_http: MetricsHttpServer | None = None
        if config.metrics_port is not None:
            self._metrics_http = MetricsHttpServer(
                self.render_metrics, config.rpc_host, config.metrics_port
            )
        # Precompute pipeline (docs/performance.md): per-(key, op) share
        # pools with background refill, consume-once journaling under
        # data_dir/precompute, and optional eager instance pipelining.
        # Always constructed — the kg20 nonce pools live in it — but the
        # announce/refill machinery only runs with config.precompute set.
        journal_dir = None
        if (
            config.data_dir is not None
            and config.precompute is not None
            and config.precompute.journal
        ):
            journal_dir = Path(config.data_dir) / "precompute"
        self._precompute = PrecomputeService(
            config.precompute,
            registry=self.registry,
            crypto_pool=self.crypto_pool,
            journal_dir=journal_dir,
            active_probe=lambda: self.instances.active_count,
            submit=self._pipeline_submit,
        )
        self._refresh_epochs: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        self._recover()
        self._load_tables()
        await self.network.start()
        await self.rpc.start()
        if self._metrics_http is not None:
            await self._metrics_http.start()
        self._lag_sampler.start()
        self._precompute.start()

    def _recover(self) -> None:
        """Crash recovery from ``data_dir`` (no-op for memory-only nodes).

        Three steps, in order: (1) finalized results come back from the
        durable cache so duplicate requests are answered without re-running
        the protocol; (2) the journal is replayed — any instance submitted
        but never finalized/aborted was in flight when the process died and
        is marked aborted with reason ``crash_recovery``; (3) the journal
        is compacted away (its history is now folded into the restored
        records, and replaying it twice would be wrong).
        """
        if self._journal is None:
            return
        restored_results = 0
        if self._results is not None:
            for instance_id, scheme, result in self._results.items():
                self.instances.restore_finished(instance_id, scheme, result)
                restored_results += 1
        submitted: dict[str, str] = {}
        terminal: set[str] = set()
        for event in self._journal.replay():
            kind = event.get("event")
            instance_id = event.get("id", "")
            if kind == "submitted":
                submitted[instance_id] = event.get("scheme", "unknown")
            elif kind in ("finalized", "aborted"):
                terminal.add(instance_id)
        in_flight = [
            (instance_id, scheme)
            for instance_id, scheme in submitted.items()
            if instance_id not in terminal
            and self._results is not None
            and instance_id not in self._results
        ]
        for instance_id, scheme in in_flight:
            self.instances.restore_aborted(instance_id, scheme, "crash_recovery")
        self._journal.reset()
        self._recovery = {
            "keys": len(self.keys),
            "results": restored_results,
            "aborted": len(in_flight),
        }
        if self._storage_metrics is not None:
            self._storage_metrics.recoveries.inc()
            self._storage_metrics.recovered_keys.set(len(self.keys))
            self._storage_metrics.recovered_instances.labels("finalized").inc(
                restored_results
            )
            self._storage_metrics.recovered_instances.labels("aborted").inc(
                len(in_flight)
            )
        if restored_results or in_flight:
            logger.info(
                "node %d recovered: %d keys, %d cached results, "
                "%d in-flight instances aborted (crash_recovery)",
                self.config.node_id,
                len(self.keys),
                restored_results,
                len(in_flight),
            )

    def _load_tables(self) -> None:
        """Install persisted fixed-base tables (no-op without a data_dir).

        Loaded tables land in the shared precompute cache (counted as
        ``loads``, not ``tables_built``) and are registered with the blob
        store so pool workers spawned later warm-start from the same
        serialized bytes.  Corrupted or version-bumped files were already
        discarded by ``TableStore.load_all``; the cache simply rebuilds
        those bases on demand.
        """
        if self._table_store is None:
            return
        from ..groups import install_table, table_blob
        from ..workers.blobs import register_table_blob

        loaded, discarded = self._table_store.load_all()
        for table in loaded:
            install_table(table)
            register_table_blob(table_blob(table))
        self._recovery["tables_loaded"] = len(loaded)
        self._recovery["tables_discarded"] = discarded
        if loaded or discarded:
            logger.info(
                "node %d installed %d persisted fixed-base tables "
                "(%d discarded)",
                self.config.node_id,
                len(loaded),
                discarded,
            )

    def _persist_tables(self) -> None:
        """Write the cache's current tables to disk (stop-time flush)."""
        if self._table_store is None:
            return
        from ..groups import snapshot_tables

        try:
            written = self._table_store.save_all(snapshot_tables())
        except Exception:  # noqa: BLE001 - persistence is best-effort
            logger.warning(
                "node %d failed to persist fixed-base tables",
                self.config.node_id,
                exc_info=True,
            )
            return
        if written:
            logger.info(
                "node %d persisted %d fixed-base tables",
                self.config.node_id,
                written,
            )

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait (bounded) for in-flight instances to terminate.

        Graceful-shutdown hook: returns True when the node went idle
        within ``timeout`` seconds (default ``config.drain_timeout``),
        False if instances were still pending when the budget ran out.
        """
        budget = timeout if timeout is not None else self.config.drain_timeout
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        while self.instances.active_count > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        return self.instances.active_count == 0

    async def stop(self) -> None:
        await self._lag_sampler.stop()
        # Refill/eager tasks submit instances: stop them before the
        # instance manager shuts down (also flushes + closes the pool
        # journal, so every consumption taken so far is durable).
        await self._precompute.stop()
        if self._metrics_http is not None:
            await self._metrics_http.stop()
        await self.rpc.stop()
        try:
            await self.instances.shutdown()
            await self.network.stop()
        finally:
            # The pool owns real child processes: join them even when the
            # teardown above fails, or a SIGTERM'd daemon would leave
            # orphaned workers behind.  Injected pools belong to whoever
            # injected them (several nodes may share one).
            if self.crypto_pool is not None and self._owns_pool:
                await self.crypto_pool.close()
            # Flush + close durable state last: executor completions above
            # may still append terminal journal records.
            if self._journal is not None:
                self._journal.close()
            if self._results is not None:
                self._results.close()
            # Persist whatever tables this run promoted, so the next boot
            # starts warm (tables are deterministic; crash-skipping this
            # flush only costs a rebuild).
            self._persist_tables()

    @property
    def rpc_address(self) -> tuple[str, int]:
        return self.rpc.address

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """Host/port of the HTTP scrape endpoint (None when disabled)."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.address

    def render_metrics(self) -> str:
        """This node's Prometheus text exposition (own + process metrics)."""
        return render_text(self.registry, default_registry())

    # -- key installation --------------------------------------------------------

    def install_key(
        self, key_id: str, scheme: str, public_key, key_share
    ) -> None:
        """Register dealer output for this node (done before start).

        Idempotent for *identical* material: a durable node restarting
        from its ``data_dir`` already holds the shares its keystore file
        describes, so re-installing the same dealer output is a no-op —
        but installing *different* material under a held id stays an
        error (silently replacing a key share would be a custody bug).
        """
        if key_id in self.keys:
            existing = self.keys.get(key_id)
            same = existing.scheme == scheme and export_key_share(
                scheme, existing.key_share
            ) == export_key_share(scheme, key_share)
            if same:
                return
            raise KeyManagementError(
                f"key id {key_id!r} already installed with different material"
            )
        self.keys.register(key_id, scheme, public_key, key_share)

    # -- key lookup / federation redirects -------------------------------------

    def owns_key(self, key_id: str) -> bool:
        """Cheap ownership check (dict containment) for the router tier."""
        return key_id in self.keys

    def lookup_key(self, key_id: str):
        """Key entry, or a fail-fast ``wrong_group`` redirect when federated.

        A node that knows the federation topology answers a misrouted
        request immediately with the owning group and its member
        endpoints in the structured error payload, instead of the opaque
        unknown-key failure — the router/client follows the hint and
        retries there.  Keys this group *should* own but was never dealt
        still raise ``KeyManagementError``.
        """
        if key_id in self.keys:
            return self.keys.get(key_id)
        topology = self.config.topology
        if topology is not None and self.config.group_id:
            owner = topology.owner_of(key_id)
            if owner != self.config.group_id:
                spec = topology.group(owner)
                raise RpcError(
                    f"key {key_id!r} belongs to group {owner!r}, not "
                    f"{self.config.group_id!r}",
                    reason="wrong_group",
                    details={
                        "key_id": key_id,
                        "group": owner,
                        "endpoints": [
                            [node_id, host, port]
                            for node_id, (host, port) in sorted(
                                spec.rpc_endpoints().items()
                            )
                        ],
                        "requested_group": self.config.group_id,
                    },
                )
        return self.keys.get(key_id)  # KeyManagementError for unknown ids

    # -- protocol API ----------------------------------------------------------

    def _channel_for(self, scheme: str) -> Channel:
        # Interactive protocols synchronise their rounds over TOB when the
        # deployment has one (§3.6); non-interactive schemes use plain P2P.
        if SCHEME_TABLE[scheme].rounds > 1 and self.network.has_tob:
            return Channel.TOB
        return Channel.P2P

    def submit_request(
        self,
        kind: str,
        key_id: str,
        data: bytes,
        label: bytes = b"",
        _pipeline: bool = False,
    ) -> InstanceRecord:
        """Start (idempotently) the protocol instance for a request.

        Precomputed material staged for this exact request (same
        deterministic instance id) is consumed here — once, ever — and
        installed on the protocol via the TRI precompute hooks; the
        executor then skips the first round's crypto.  ``_pipeline``
        marks the pipeline's own eager submissions, which consume pool
        entries but are not client-visible requests (no served counter).
        """
        entry = self.lookup_key(key_id)
        instance_id = derive_instance_id(kind, key_id, data, label)
        source = "inline"
        if entry.scheme == "kg20":
            if kind != "sign":
                raise RpcError("kg20 keys only support signing")
            protocol = FrostProtocol(
                instance_id,
                entry.key_share,
                data,
                channel=self._channel_for("kg20"),
            )
            staged = self._precompute.take_frost(key_id)
            if staged is not None:
                protocol.stage_precomputed(staged)
                source = "pool"
        else:
            operation = make_operation(
                entry.scheme,
                entry.public_key,
                entry.key_share,
                OperationRequest(kind, data, label),
            )
            protocol = NonInteractiveProtocol(
                instance_id,
                self.config.node_id,
                operation,
                channel=self._channel_for(entry.scheme),
            )
            payload = self._precompute.take(instance_id)
            if payload is not None:
                protocol.stage_precomputed(payload)
                source = "pool"
            elif self._precompute.was_pipelined(instance_id):
                # The announce already ran (or finished) this instance
                # ahead of demand; the request folds into it below.
                source = "pool"
        record = self.instances.start_instance(protocol, entry.scheme)
        if self._precompute.enabled and not _pipeline:
            self._precompute.record_served(kind, source)
        return record

    def _pipeline_submit(self, kind: str, key_id: str, data: bytes, label: bytes):
        """Eager-start callback for the precompute service: submit the
        announced request's instance now and hand back its result
        awaitable (the service tracks completion for pacing)."""
        record = self.submit_request(kind, key_id, data, label, _pipeline=True)
        return self.instances.result(record.instance_id)

    async def run_request(
        self, kind: str, key_id: str, data: bytes, label: bytes = b""
    ) -> bytes:
        """Submit a request and await its result."""
        record = self.submit_request(kind, key_id, data, label)
        return await self.instances.result(record.instance_id)

    async def precompute_frost(self, key_id: str, count: int) -> int:
        """Run the FROST preprocessing round, filling this key's nonce pool."""
        entry = self.lookup_key(key_id)
        if entry.scheme != "kg20":
            raise RpcError("precomputation only applies to kg20 keys")
        pool = self._precompute.frost_pool(key_id)
        instance_id = derive_instance_id(
            "frost-pre", key_id, count.to_bytes(4, "big")
        )
        protocol = FrostPrecomputeProtocol(
            instance_id,
            entry.key_share,
            count,
            pool,
            channel=self._channel_for("kg20"),
        )
        record = self.instances.start_instance(protocol, "kg20")
        await self.instances.result(record.instance_id)
        self._precompute.note_frost_depth(key_id)
        return pool.available

    async def precompute_requests(
        self, key_id: str, items: list[bytes], label: bytes = b""
    ) -> dict:
        """Announce upcoming requests; stage their shares ahead of demand.

        Every node must receive the same announce (the client broadcasts
        it) so all pools hold material for the same instance ids.  Returns
        the staging tally (``staged`` / ``duplicate`` / ``deferred`` /
        ``failed`` counts plus per-pool depths).
        """
        entry = self.lookup_key(key_id)
        if entry.scheme == "kg20":
            raise RpcError(
                "kg20 precomputes nonce batches: call precompute with "
                "count=N, not items",
                reason="precompute_kind",
            )
        if not self._precompute.enabled:
            raise RpcError(
                "precompute pipeline disabled on this node (set "
                "NodeConfig.precompute / --precompute-depth)",
                reason="precompute_disabled",
            )
        kind = _KIND_TO_OP[entry.kind]
        jobs = []
        for data in items:
            # Bind per-item via default args; the factory runs in the
            # refill loop (announce handling must stay cheap, the
            # operation construction parses ciphertexts).
            def build(data=data, entry=entry):
                return make_operation(
                    entry.scheme,
                    entry.public_key,
                    entry.key_share,
                    OperationRequest(kind, data, label),
                )

            jobs.append(
                PrecomputeJob(
                    instance_id=derive_instance_id(kind, key_id, data, label),
                    key_id=key_id,
                    kind=kind,
                    data=data,
                    label=label,
                    operation_factory=build,
                    scheme=entry.scheme,
                )
            )
        return await self._precompute.warm(jobs)

    async def run_dkg(
        self, key_id: str, scheme: str = "cks05", group_name: str = "ed25519"
    ) -> str:
        """Generate a key *without a dealer* and install it under ``key_id``.

        All nodes must call this with the same arguments (the instance id is
        derived from them).  The Joint-Feldman output has the shape
        ``(Y = g^x, Y_i = g^{x_i})``, which is exactly the key material of
        the discrete-log schemes; supported targets: cks05, sg02, kg20.
        Returns the hex group public key.
        """
        from ..schemes import cks05 as cks05_mod
        from ..schemes import kg20 as kg20_mod
        from ..schemes import sg02 as sg02_mod

        key_types = {
            "cks05": (cks05_mod.Cks05PublicKey, cks05_mod.Cks05KeyShare),
            "sg02": (sg02_mod.Sg02PublicKey, sg02_mod.Sg02KeyShare),
            "kg20": (kg20_mod.Kg20PublicKey, kg20_mod.Kg20KeyShare),
        }
        if scheme not in key_types:
            raise RpcError(
                f"DKG output fits DL schemes only ({sorted(key_types)}), "
                f"not {scheme!r}"
            )
        if key_id in self.keys:
            raise RpcError(f"key id {key_id!r} already installed")
        group = get_group(group_name)
        instance_id = derive_instance_id(
            "dkg", key_id, group_name.encode(), scheme.encode()
        )
        protocol = DkgProtocol(
            instance_id,
            self.config.node_id,
            self.config.threshold,
            self.config.parties,
            group,
        )
        record = self.instances.start_instance(protocol, scheme)
        await self.instances.result(record.instance_id)
        result = protocol.result
        public_cls, share_cls = key_types[scheme]
        public = public_cls(
            group_name,
            self.config.threshold,
            self.config.parties,
            result.group_key,
            tuple(result.verification_keys),
        )
        share = share_cls(self.config.node_id, result.key_share, public)
        self.install_key(key_id, scheme, public, share)
        return hexlify(result.group_key.to_bytes())

    async def refresh_key(self, key_id: str) -> str:
        """Proactively refresh an installed DL key's shares (same public key).

        All nodes must call this with the same ``key_id``.  The first t+1
        nodes re-deal; every node ends up with a fresh share of the same
        secret, and the entry in the key manager is swapped atomically once
        the protocol finishes.  Returns the (unchanged) group key in hex.
        """
        from ..core.protocols import ReshareProtocol

        entry = self.lookup_key(key_id)
        if entry.scheme not in ("cks05", "sg02", "kg20"):
            raise RpcError(
                f"refresh supports the DL schemes, not {entry.scheme!r}"
            )
        public = entry.public_key
        # The group key attribute is `h` for ciphers/coins, `y` for kg20.
        current_key = getattr(public, "h", None) or public.y
        # Epoch counter makes repeated refreshes of the same key distinct.
        epoch = self._refresh_epochs.get(key_id, 0) + 1
        self._refresh_epochs[key_id] = epoch
        instance_id = derive_instance_id(
            "refresh", key_id, epoch.to_bytes(4, "big")
        )
        protocol = ReshareProtocol(
            instance_id,
            self.config.node_id,
            public.threshold,
            public.parties,
            public.group,
            entry.key_share.value,
        )
        record = self.instances.start_instance(protocol, entry.scheme)
        await self.instances.result(record.instance_id)
        result = protocol.result
        if result.group_key != current_key:
            raise RpcError("refresh produced a different group key; aborting swap")
        new_public = type(public)(
            public.group_name,
            public.threshold,
            public.parties,
            result.group_key,
            tuple(result.verification_keys),
        )
        new_share = type(entry.key_share)(
            self.config.node_id, result.share_value, new_public
        )
        self.keys.remove(key_id)
        self.keys.register(key_id, entry.scheme, new_public, new_share)
        return hexlify(result.group_key.to_bytes())

    # -- scheme API (direct primitive access) ----------------------------------

    def scheme_encrypt(self, key_id: str, plaintext: bytes, label: bytes) -> bytes:
        entry = self.lookup_key(key_id)
        scheme = get_scheme(entry.scheme)
        if SCHEME_TABLE[entry.scheme].kind is not SchemeKind.CIPHER:
            raise RpcError(f"key {key_id!r} is not a cipher key")
        return scheme.encrypt(entry.public_key, plaintext, label).to_bytes()

    def scheme_verify_signature(
        self, key_id: str, message: bytes, signature: bytes
    ) -> bool:
        from ..schemes import bls04, kg20, sh00

        entry = self.lookup_key(key_id)
        scheme = get_scheme(entry.scheme)
        try:
            if entry.scheme == "sh00":
                sig = sh00.Sh00Signature.from_bytes(signature)
            elif entry.scheme == "bls04":
                sig = bls04.Bls04Signature.from_bytes(signature)
            elif entry.scheme == "kg20":
                sig = kg20.Kg20Signature.from_bytes(
                    signature, entry.public_key.group
                )
            else:
                raise RpcError(f"key {key_id!r} is not a signature key")
            scheme.verify(entry.public_key, message, sig)
            return True
        except RpcError:
            raise
        except Exception:  # noqa: BLE001 - verification is a boolean question
            return False

    def stats(self) -> dict:
        """Health/utilization snapshot: instance counts, latency summary, and
        crypto precompute-cache counters (see docs/observability.md).

        The latency digest is backed by the telemetry histogram
        (``repro_instance_seconds``), which keeps exact samples: p50 is a
        true interpolated median (the old ``latencies[len//2]`` was wrong
        for even counts) and p95/p99 come from the same source Prometheus
        scrapes — one coherent view with the ``metrics`` endpoint.
        """
        from ..mathutils.backends import backend_info
        from ..telemetry import crypto_cache_snapshot

        records = self.instances.records()
        by_status: dict[str, int] = {}
        aborts: dict[str, int] = {}
        for record in records:
            by_status[record.status.value] = by_status.get(record.status.value, 0) + 1
            if record.abort_reason is not None:
                aborts[record.abort_reason] = aborts.get(record.abort_reason, 0) + 1
        return {
            "node_id": self.config.node_id,
            "instances": by_status,
            "active": self.instances.active_count,
            "keys": len(self.keys),
            # Structured failure taxonomy (docs/robustness.md): how many
            # instances aborted per reason (timeout / insufficient_shares /
            # byzantine_detected / crash_recovery / ...).
            "aborts": aborts,
            # What the last start() recovered from data_dir (empty for
            # memory-only nodes and for clean first boots).
            "recovery": dict(self._recovery),
            "latency": dict(summarize(self.registry.get("repro_instance_seconds"))),
            "crypto_cache": crypto_cache_snapshot(),
            # Which math backend this process computes with (docs/
            # performance.md, "Math backends").
            "crypto_backend": backend_info(),
            # Worker-pool offload state (docs/performance.md): task
            # counters, fallbacks, crashes, live worker pids, the adaptive
            # policy's decisions/EWMAs, and cross-request coalescing.
            "crypto_pool": self._pool_stats(),
            # Precompute pipeline (docs/performance.md): per-pool staged
            # depths, refill queue/outcomes, served-source counters, and
            # kg20 nonce availability.
            "precompute": self._precompute.stats(),
            # Scheduling-delay digest from the heartbeat histogram: the
            # before/after metric for moving crypto off the event loop.
            "event_loop_lag": dict(
                summarize(self.registry.get("repro_event_loop_lag_seconds"))
            ),
        }

    def _pool_stats(self) -> dict:
        if self.crypto_pool is None:
            return {"enabled": False, "workers": 0}
        stats = self.crypto_pool.stats()
        if self._coalescer is not None:
            stats["coalescing"] = self._coalescer.stats()
        return stats

    def key_info(self) -> list[dict]:
        return [
            {
                "key_id": entry.key_id,
                "scheme": entry.scheme,
                "kind": entry.kind,
                "threshold": entry.public_key.threshold,
                "parties": entry.public_key.parties,
                "public_key": hexlify(entry.public_key.to_bytes()),
            }
            for entry in self.keys.list_keys()
        ]
