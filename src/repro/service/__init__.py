"""Service layer: the node assembly and its two RPC endpoints.

The paper's service layer exposes a *protocol API* (run threshold protocols
as a black box) and a *scheme API* (direct access to primitives) over gRPC
(§3.4).  gRPC is unavailable offline, so the transport is JSON-lines over
TCP with identical method shapes; the layer is deliberately thin so other
framings can be added, as the paper notes.
"""

from .config import NodeConfig, PeerConfig, make_local_configs
from .node import ThetacryptNode
from .client import ThetacryptClient
from .server import RpcServer

__all__ = [
    "NodeConfig",
    "PeerConfig",
    "make_local_configs",
    "ThetacryptNode",
    "ThetacryptClient",
    "RpcServer",
]
