"""Shamir secret sharing over a prime field Z_q.

Thetacrypt's convention (and this library's throughout): a *(t, n)* sharing
tolerates ``t`` corrupted parties and any ``t + 1`` shares reconstruct — the
dealing polynomial has degree ``t``.  Participant ids are 1..n (0 is the
secret's evaluation point and must never be a share id).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError, ThresholdNotReachedError
from ..mathutils.lagrange import lagrange_coefficients_at_zero


@dataclass(frozen=True)
class ShamirShare:
    """One participant's share: the polynomial evaluated at ``id``."""

    id: int
    value: int

    def __post_init__(self) -> None:
        if self.id < 1:
            raise ConfigurationError("share ids start at 1")


def check_threshold(threshold: int, parties: int) -> None:
    """Validate a (t, n) parameter pair."""
    if parties < 1:
        raise ConfigurationError("need at least one party")
    if threshold < 1:
        raise ConfigurationError("threshold must be at least 1")
    if threshold >= parties:
        raise ConfigurationError(
            f"threshold t={threshold} must be < n={parties} "
            "(t+1 parties must be able to reconstruct)"
        )


def sample_polynomial(secret: int, degree: int, modulus: int) -> list[int]:
    """Random polynomial of the given degree with constant term ``secret``."""
    coefficients = [secret % modulus]
    coefficients.extend(secrets.randbelow(modulus) for _ in range(degree))
    return coefficients


def evaluate_polynomial(coefficients: Sequence[int], x: int, modulus: int) -> int:
    """Horner evaluation of the polynomial at ``x`` over Z_modulus."""
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % modulus
    return result


def share_secret(
    secret: int, threshold: int, parties: int, modulus: int
) -> list[ShamirShare]:
    """Deal a (t, n) Shamir sharing of ``secret`` over Z_modulus."""
    check_threshold(threshold, parties)
    coefficients = sample_polynomial(secret, threshold, modulus)
    return [
        ShamirShare(i, evaluate_polynomial(coefficients, i, modulus))
        for i in range(1, parties + 1)
    ]


def reconstruct_secret(
    shares: Iterable[ShamirShare], threshold: int, modulus: int
) -> int:
    """Recover the secret from at least ``threshold + 1`` shares."""
    share_list = list(shares)
    if len(share_list) < threshold + 1:
        raise ThresholdNotReachedError(
            f"need {threshold + 1} shares, got {len(share_list)}"
        )
    subset = share_list[: threshold + 1]
    ids = [share.id for share in subset]
    coefficients = lagrange_coefficients_at_zero(ids, modulus)
    return sum(share.value * coefficients[share.id] for share in subset) % modulus
