"""Secret sharing: Shamir over fields and integers, Feldman/Pedersen VSS."""

from .shamir import ShamirShare, share_secret, reconstruct_secret
from .integer_shamir import share_integer_secret
from .feldman import FeldmanCommitment, feldman_share
from .pedersen import PedersenCommitment, pedersen_share, pedersen_verify

__all__ = [
    "ShamirShare",
    "share_secret",
    "reconstruct_secret",
    "share_integer_secret",
    "FeldmanCommitment",
    "feldman_share",
    "PedersenCommitment",
    "pedersen_share",
    "pedersen_verify",
]
