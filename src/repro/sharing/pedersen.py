"""Pedersen verifiable secret sharing (information-theoretically hiding).

Commitments ``C_k = g^{a_k} · h^{b_k}`` bind two polynomials (the share
polynomial and a blinding polynomial) without revealing either; ``h`` is a
second generator with unknown discrete log, derived by hashing a domain tag
into the group.  Used by the Gennaro-style DKG variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidShareError
from ..groups.base import Group, GroupElement
from .shamir import ShamirShare, check_threshold, evaluate_polynomial, sample_polynomial

_H_TAG = b"repro-pedersen-vss-second-generator"


def second_generator(group: Group) -> GroupElement:
    """A generator with unknown dlog relative to the standard one."""
    return group.hash_to_element(_H_TAG)


@dataclass(frozen=True)
class PedersenCommitment:
    """Commitments C_k = g^{a_k} h^{b_k} to both polynomials."""

    commitments: tuple[GroupElement, ...]

    @property
    def threshold(self) -> int:
        return len(self.commitments) - 1

    def expected_share_commitment(self, share_id: int) -> GroupElement:
        group = self.commitments[0].group
        result = group.identity()
        power = 1
        for commitment in self.commitments:
            result = result * commitment**power
            power *= share_id
        return result


def pedersen_share(
    secret: int, threshold: int, parties: int, group: Group
) -> tuple[list[ShamirShare], list[ShamirShare], PedersenCommitment]:
    """Deal (share, blinding-share) pairs with Pedersen commitments.

    Returns ``(shares, blinding_shares, commitment)``; party ``i`` receives
    ``(shares[i-1], blinding_shares[i-1])``.
    """
    check_threshold(threshold, parties)
    h = second_generator(group)
    a = sample_polynomial(secret, threshold, group.order)
    b = sample_polynomial(group.random_scalar(), threshold, group.order)
    shares = [
        ShamirShare(i, evaluate_polynomial(a, i, group.order))
        for i in range(1, parties + 1)
    ]
    blinding = [
        ShamirShare(i, evaluate_polynomial(b, i, group.order))
        for i in range(1, parties + 1)
    ]
    commitments = tuple(
        group.generator() ** ak * h**bk for ak, bk in zip(a, b)
    )
    return shares, blinding, PedersenCommitment(commitments)


def pedersen_verify(
    commitment: PedersenCommitment,
    share: ShamirShare,
    blinding_share: ShamirShare,
    group: Group,
) -> None:
    """Raise :class:`InvalidShareError` if the pair fails the VSS check."""
    if share.id != blinding_share.id:
        raise InvalidShareError("share and blinding share ids differ")
    h = second_generator(group)
    expected = commitment.expected_share_commitment(share.id)
    actual = group.generator() ** share.value * h**blinding_share.value
    if actual != expected:
        raise InvalidShareError(
            f"share {share.id} does not match Pedersen commitments"
        )
