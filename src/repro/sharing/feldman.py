"""Feldman verifiable secret sharing over an abstract group.

A dealer publishes commitments ``C_k = g^{a_k}`` to the polynomial
coefficients; each party checks its share against them.  Used by the trusted
dealer (so parties can audit their key material) and as the building block of
the Joint-Feldman DKG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidShareError
from ..groups.base import Group, GroupElement
from .shamir import ShamirShare, check_threshold, evaluate_polynomial, sample_polynomial


@dataclass(frozen=True)
class FeldmanCommitment:
    """Public commitments to the dealing polynomial's coefficients."""

    commitments: tuple[GroupElement, ...]

    @property
    def threshold(self) -> int:
        return len(self.commitments) - 1

    def expected_share_commitment(self, share_id: int) -> GroupElement:
        """Compute g^{f(share_id)} = Π C_k^{id^k} from the commitments."""
        group = self.commitments[0].group
        result = group.identity()
        power = 1
        for commitment in self.commitments:
            result = result * commitment**power
            power *= share_id
        return result

    def verify_share(self, share: ShamirShare) -> None:
        """Raise :class:`InvalidShareError` if the share is inconsistent."""
        group = self.commitments[0].group
        expected = self.expected_share_commitment(share.id)
        if group.generator() ** share.value != expected:
            raise InvalidShareError(
                f"share {share.id} does not match Feldman commitments"
            )

    def public_key(self) -> GroupElement:
        """g^{f(0)} — the group public key of the shared secret."""
        return self.commitments[0]


def feldman_share(
    secret: int, threshold: int, parties: int, group: Group
) -> tuple[list[ShamirShare], FeldmanCommitment]:
    """Deal shares of ``secret`` with Feldman commitments over ``group``."""
    check_threshold(threshold, parties)
    coefficients = sample_polynomial(secret, threshold, group.order)
    shares = [
        ShamirShare(i, evaluate_polynomial(coefficients, i, group.order))
        for i in range(1, parties + 1)
    ]
    commitments = tuple(group.generator() ** c for c in coefficients)
    return shares, FeldmanCommitment(commitments)


def combine_commitments(
    commitments: Sequence[FeldmanCommitment],
) -> FeldmanCommitment:
    """Pointwise product of commitments (sums the committed polynomials)."""
    if not commitments:
        raise InvalidShareError("no commitments to combine")
    width = len(commitments[0].commitments)
    if any(len(c.commitments) != width for c in commitments):
        raise InvalidShareError("commitment degree mismatch")
    combined = []
    for k in range(width):
        acc = commitments[0].commitments[k]
        for other in commitments[1:]:
            acc = acc * other.commitments[k]
        combined.append(acc)
    return FeldmanCommitment(tuple(combined))
