"""Shamir sharing over a *secret* modulus, as used by Shoup's RSA scheme.

In SH00 the signing exponent ``d`` is shared over Z_m with ``m = p'q'``
secret.  Reconstruction cannot divide by Lagrange denominators, so the scheme
works with Δ-scaled integer coefficients (Δ = n!, see
:func:`repro.mathutils.lagrange.shoup_lagrange_coefficient`).  Dealing is
ordinary polynomial evaluation over Z_m; only the *use* of the shares differs.
"""

from __future__ import annotations

import secrets

from .shamir import ShamirShare, check_threshold


def share_integer_secret(
    secret: int, threshold: int, parties: int, modulus: int
) -> list[ShamirShare]:
    """Deal a (t, n) sharing of ``secret`` over the hidden-order ring Z_modulus.

    Identical maths to field Shamir; kept separate because callers must NOT
    reconstruct with modular Lagrange (the modulus is secret at combine time)
    but with Shoup's Δ-scaled integer coefficients.
    """
    check_threshold(threshold, parties)
    coefficients = [secret % modulus]
    coefficients.extend(secrets.randbelow(modulus) for _ in range(threshold))
    shares = []
    for i in range(1, parties + 1):
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * i + coefficient) % modulus
        shares.append(ShamirShare(i, value))
    return shares
