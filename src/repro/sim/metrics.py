"""The paper's metrics (§4.3): latency percentiles, L_θ, δ_res, η_θ, knees.

Definitions reproduced:

* **Server-side latency** — request receipt at a node to local result
  generation; client round-trips are excluded.
* **L_k** — k-th percentile over all (request, node) latency samples.
* **Threshold latency L_θ^net** — the θ-th percentile of the latency
  distribution *across nodes*, θ = (t+1)/n · 100 ≈ 34; per-node values are
  each node's L_95 (the paper computes the derived metrics "from
  L_95^node").
* **Residual delay factor** δ_res = (L_95^net − L_θ^net) / L_θ^net.
* **Latency fairness index** η_θ = L_θ^net / L_95^net.
* **Throughput** — processed requests over the active window, with the 10%
  grace period; **knee capacity** — the rate maximizing throughput/latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .cluster import SimResult


def latency_percentile(values: list[float], k: float) -> float:
    """k-th percentile by linear interpolation (0 < k ≤ 100)."""
    if not values:
        raise SimulationError("no latency samples")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (k / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class ExperimentMetrics:
    """Everything one (scheme, deployment, rate) run yields."""

    scheme: str
    deployment: str
    rate: float
    payload_bytes: int
    offered: int  # requests offered by the client
    completed: int  # requests processed within the grace window
    throughput: float
    l50: float
    l95: float
    l_theta_net: float
    l50_net: float
    l95_net: float
    delta_res: float
    eta_theta: float
    mean_utilization: float
    max_utilization: float


def _grace_horizon(result: SimResult) -> float:
    duration = result.workload.effective_duration
    return duration * 1.1


def completed_latencies(result: SimResult) -> list[float]:
    """All per-(request, node) latencies inside the grace window."""
    horizon = _grace_horizon(result)
    return [
        s.finished_at - s.received_at
        for s in result.samples
        if s.finished_at is not None and s.finished_at <= horizon
    ]


def throughput_of(result: SimResult) -> tuple[float, int]:
    """(requests/second, completed count) per the paper's §4.3 definition."""
    duration = result.workload.effective_duration
    horizon = _grace_horizon(result)
    finish_times = sorted(
        t for t in result.request_first_finish.values() if t <= horizon
    )
    offered = result.workload.request_count
    completed = len(finish_times)
    if completed == 0:
        return 0.0, 0
    if completed < offered:
        # Saturated: unprocessed requests remain, so normalize by the full
        # experiment duration for a consistent metric.
        return completed / duration, completed
    window = finish_times[-1] - finish_times[0]
    if window <= 0:
        window = duration
    return completed / window, completed


def network_node_metrics(
    result: SimResult, quorum: int, parties: int
) -> tuple[float, float, float]:
    """(L_θ^net, L_50^net, L_95^net) from per-node L_95 values."""
    horizon = _grace_horizon(result)
    per_node: dict[int, list[float]] = {}
    for sample in result.samples:
        if sample.finished_at is None or sample.finished_at > horizon:
            continue
        per_node.setdefault(sample.node_id, []).append(
            sample.finished_at - sample.received_at
        )
    node_values = [
        latency_percentile(latencies, 95) for latencies in per_node.values()
    ]
    if not node_values:
        raise SimulationError("no node completed any request")
    theta = 100.0 * quorum / parties
    return (
        latency_percentile(node_values, theta),
        latency_percentile(node_values, 50),
        latency_percentile(node_values, 95),
    )


def residual_delay_factor(l_theta_net: float, l95_net: float) -> float:
    """δ_res = (L_95^net − L_θ^net) / L_θ^net."""
    if l_theta_net <= 0:
        raise SimulationError("threshold latency must be positive")
    return (l95_net - l_theta_net) / l_theta_net


def latency_fairness_index(l_theta_net: float, l95_net: float) -> float:
    """η_θ = L_θ^net / L_95^net ∈ (0, 1]."""
    if l95_net <= 0:
        raise SimulationError("L95 must be positive")
    return l_theta_net / l95_net


def summarize(result: SimResult, quorum: int, parties: int) -> ExperimentMetrics:
    """Compute every §4.3 metric for one run.

    A fully saturated run that completes nothing inside the grace window
    yields a "saturation point": zero throughput and latencies pinned to the
    experiment-time upper bound ("latency values range ... to an upper bound
    due to the experiment time", §4.5).
    """
    latencies = completed_latencies(result)
    if not latencies:
        horizon = _grace_horizon(result)
        utilizations = list(result.cpu_utilization.values())
        return ExperimentMetrics(
            scheme=result.scheme,
            deployment=result.deployment,
            rate=result.workload.rate,
            payload_bytes=result.workload.payload_bytes,
            offered=result.workload.request_count,
            completed=0,
            throughput=0.0,
            l50=horizon,
            l95=horizon,
            l_theta_net=horizon,
            l50_net=horizon,
            l95_net=horizon,
            delta_res=0.0,
            eta_theta=1.0,
            mean_utilization=sum(utilizations) / len(utilizations),
            max_utilization=max(utilizations),
        )
    throughput, completed = throughput_of(result)
    l_theta, l50_net, l95_net = network_node_metrics(result, quorum, parties)
    utilizations = list(result.cpu_utilization.values())
    return ExperimentMetrics(
        scheme=result.scheme,
        deployment=result.deployment,
        rate=result.workload.rate,
        payload_bytes=result.workload.payload_bytes,
        offered=result.workload.request_count,
        completed=completed,
        throughput=throughput,
        l50=latency_percentile(latencies, 50),
        l95=latency_percentile(latencies, 95),
        l_theta_net=l_theta,
        l50_net=l50_net,
        l95_net=l95_net,
        delta_res=residual_delay_factor(l_theta, l95_net),
        eta_theta=latency_fairness_index(l_theta, l95_net),
        mean_utilization=sum(utilizations) / len(utilizations),
        max_utilization=max(utilizations),
    )


def find_knee(points: list[ExperimentMetrics]) -> ExperimentMetrics:
    """Knee capacity: the point maximizing throughput / L_95 (§4.4).

    Only points where the system kept up with the offered load qualify —
    past saturation both throughput and latency are artefacts of the
    measurement window, not an operating point.  When no rate keeps up
    (e.g. SH00 on 127 nodes), the knee degenerates to the lowest offered
    rate, which is how the paper reports those rows (knee = 1 req/s).
    """
    if not points:
        raise SimulationError("no capacity points")
    sustainable = [p for p in points if p.offered and p.completed >= 0.95 * p.offered]
    if not sustainable:
        return min(points, key=lambda p: p.rate)
    return max(
        sustainable, key=lambda p: p.throughput / p.l95 if p.l95 > 0 else 0.0
    )


def usable_capacity(points: list[ExperimentMetrics]) -> ExperimentMetrics:
    """Maximum sustainable throughput point (rightmost before degradation)."""
    if not points:
        raise SimulationError("no capacity points")
    return max(points, key=lambda p: p.throughput)
