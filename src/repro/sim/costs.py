"""CPU cost model for the simulated Θ-network.

The *calibrated* model prices each scheme's operations from per-primitive
costs representative of the paper's hardware (1 vCPU @ 2.2 GHz running the
Rust/MIRACL implementation): elliptic-curve scalar multiplications are
cheap, pairings an order of magnitude dearer, and RSA-2048 exponentiations
dearest — exactly the ECDH < pairings < RSA ordering the paper observes
(§4.5).  Service overheads (request admission, per-message deserialization)
represent the gRPC/tokio path and are shared by all schemes.

The *measured* model instead microbenchmarks this library's own pure-Python
primitives; it preserves ordering but with Python's constant factor, and is
used by the ablation benchmarks.

All costs are in seconds of single-core CPU time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import ConfigurationError

# ---------------------------------------------------------------------------
# Primitive costs (calibrated; seconds per operation on the paper's vCPU).
# ---------------------------------------------------------------------------

PRIMITIVES_CALIBRATED = {
    "ec_mul_ed25519": 0.00010,
    "ec_mul_bn254_g1": 0.00015,
    "ec_mul_bn254_g2": 0.00045,
    "pairing": 0.0009,
    "rsa2048_exp": 0.0011,  # full-size exponent mod 2048-bit n
    "hash_to_g1": 0.00025,
    "hash_to_curve_ed25519": 0.00012,
    "sha256_block": 0.0000002,
    # Service-path overheads (request admission, message deserialization,
    # executor scheduling) — the non-crypto part of the stack.
    "request_overhead": 0.0020,
    "message_overhead": 0.00035,
    # Per-message cost component that grows with the network size: gossip
    # mesh density (duplicate suppression work), share-map bookkeeping and
    # per-share coefficient handling all scale with n; capped at 40 parties
    # where table reuse amortizes it.  This is what makes the knee capacity
    # fall by ~2^3 from 7 to 31 nodes as the paper reports (§4.5).
    "per_party_message_overhead": 0.00005,
    "per_party_cap": 40,
    "drop_overhead": 0.00004,
    "per_payload_byte": 0.0000000012,
}


@dataclass(frozen=True)
class SchemeCosts:
    """CPU seconds for each step of one protocol run at one node."""

    request_fixed: float  # request admission + input validity (e.g. ct check)
    share_gen: float
    share_verify: float
    combine_base: float
    combine_per_share: float
    message_overhead: float
    per_party_message: float
    per_party_cap: int
    drop_overhead: float
    per_payload_byte: float
    # Interactive (KG20) extras; zero for non-interactive schemes.
    commit_gen: float = 0.0
    round2_base: float = 0.0
    round2_per_party: float = 0.0

    def request(self, payload_bytes: int) -> float:
        return self.request_fixed + payload_bytes * self.per_payload_byte

    def combine(self, quorum: int) -> float:
        return self.combine_base + quorum * self.combine_per_share

    def message(self, parties: int) -> float:
        """Per accepted message service cost at network size ``parties``."""
        return self.message_overhead + self.per_party_message * min(
            parties, self.per_party_cap
        )


class CostModel:
    """Scheme name → :class:`SchemeCosts` lookup."""

    def __init__(self, costs: dict[str, SchemeCosts], label: str):
        self._costs = costs
        self.label = label

    def for_scheme(self, scheme: str) -> SchemeCosts:
        if scheme not in self._costs:
            raise ConfigurationError(f"no cost entry for scheme {scheme!r}")
        return self._costs[scheme]

    def schemes(self) -> list[str]:
        return sorted(self._costs)


def _derive_scheme_costs(p: dict[str, float], rsa_scale: float = 1.0) -> dict[str, SchemeCosts]:
    """Price each scheme's steps by counting primitive operations.

    Operation counts follow the actual algorithms in :mod:`repro.schemes`:
    e.g. an SG02 decryption share is one exponentiation plus a two-
    exponentiation DLEQ proof; verifying it costs four; SH00's integer DLEQ
    needs double-length exponents, hence the factor ~2 on rsa_exp; etc.
    """
    ed = p["ec_mul_ed25519"]
    g1 = p["ec_mul_bn254_g1"]
    pair = p["pairing"]
    rsa = p["rsa2048_exp"] * rsa_scale
    common = dict(
        message_overhead=p["message_overhead"],
        per_party_message=p["per_party_message_overhead"],
        per_party_cap=int(p["per_party_cap"]),
        drop_overhead=p["drop_overhead"],
        per_payload_byte=p["per_payload_byte"],
    )
    return {
        # TDH2: ct check = 4 mults; share = 1 exp + DLEQ prove (2 mults);
        # share verify = DLEQ verify (4 mults); combine = ct check + quorum exps.
        "sg02": SchemeCosts(
            request_fixed=p["request_overhead"] + 4 * ed,
            share_gen=3 * ed,
            share_verify=4 * ed,
            combine_base=4 * ed,
            combine_per_share=ed,
            **common,
        ),
        # Baek-Zheng: ct check = 2 pairings; share = hash-to-G1 + 1 G1 exp;
        # share verify = 2 pairings; combine = ct check + quorum G1 exps + pairing.
        "bz03": SchemeCosts(
            request_fixed=p["request_overhead"] + 2 * pair,
            share_gen=p["hash_to_g1"] + g1,
            share_verify=2 * pair,
            combine_base=2 * pair + pair,
            combine_per_share=g1,
            **common,
        ),
        # Shoup RSA: share = 1 exp with 2Δs exponent + proof (2 double-length
        # exps); verify = 4 double-length exps; combine = quorum Δ-scaled exps
        # + 2 Bezout exps.
        "sh00": SchemeCosts(
            request_fixed=p["request_overhead"],
            share_gen=rsa + 2 * (2 * rsa),
            share_verify=4 * (2 * rsa),
            combine_base=2 * rsa,
            combine_per_share=1.5 * rsa,
            **common,
        ),
        # BLS: share = hash + 1 G1 exp; verify = 2 pairings; combine =
        # quorum G1 exps + final 2-pairing check.
        "bls04": SchemeCosts(
            request_fixed=p["request_overhead"],
            share_gen=p["hash_to_g1"] + g1,
            share_verify=2 * pair,
            combine_base=2 * pair,
            combine_per_share=g1,
            **common,
        ),
        # FROST: commit = 2 mults; round-2 sign = R computation (2 mults per
        # party) + 1 mult; combine = share checks (3 mults each, priced per
        # share) + final Schnorr check.
        "kg20": SchemeCosts(
            request_fixed=p["request_overhead"],
            share_gen=0.0,  # unused; interactive path below
            share_verify=0.0,
            combine_base=2 * ed,
            combine_per_share=3 * ed,
            commit_gen=2 * ed,
            round2_base=ed,
            round2_per_party=2 * ed,
            **common,
        ),
        # CKS05 coin: share = hash-to-curve + exp + DLEQ prove; verify =
        # DLEQ verify; combine = quorum exps + hash.
        "cks05": SchemeCosts(
            request_fixed=p["request_overhead"] + p["hash_to_curve_ed25519"],
            share_gen=p["hash_to_curve_ed25519"] + 3 * ed,
            share_verify=4 * ed,
            combine_base=ed,
            combine_per_share=ed,
            **common,
        ),
    }


def calibrated_cost_model(rsa_bits: int = 2048) -> CostModel:
    """The default model mirroring the paper's hardware (Table 3 setup)."""
    # RSA cost scales roughly cubically with modulus size.
    scale = (rsa_bits / 2048) ** 3
    return CostModel(
        _derive_scheme_costs(PRIMITIVES_CALIBRATED, rsa_scale=scale),
        label=f"calibrated(rsa={rsa_bits})",
    )


# ---------------------------------------------------------------------------
# Measured mode: price primitives by timing this library's implementations.
# ---------------------------------------------------------------------------


def _time_call(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_primitives() -> dict[str, float]:
    """Microbenchmark the pure-Python substrates (slow; used on demand)."""
    from ..groups import get_group
    from ..groups.bn254 import bn254_pairing
    from ..rsa.keygen import modulus_for_bits

    ed = get_group("ed25519")
    pairing = bn254_pairing()
    scalar = 0x1234567890ABCDEF1234567890ABCDEF
    base = ed.generator()
    g1_gen = pairing.g1.generator()
    g2_gen = pairing.g2.generator()
    gt = pairing.pair(g1_gen, g2_gen)
    mod = modulus_for_bits(2048)
    x = mod.random_square()
    measured = dict(PRIMITIVES_CALIBRATED)
    measured.update(
        {
            "ec_mul_ed25519": _time_call(lambda: base**scalar),
            "ec_mul_bn254_g1": _time_call(lambda: g1_gen**scalar),
            "ec_mul_bn254_g2": _time_call(lambda: g2_gen**scalar),
            "pairing": _time_call(lambda: pairing.pair(g1_gen, g2_gen), repeat=3),
            "rsa2048_exp": _time_call(lambda: pow(x, mod.n // 3, mod.n)),
            "hash_to_g1": _time_call(
                lambda: pairing.g1.hash_to_element(b"measure")
            ),
            "hash_to_curve_ed25519": _time_call(
                lambda: ed.hash_to_element(b"measure")
            ),
        }
    )
    return measured


def measured_cost_model() -> CostModel:
    """Cost model priced from this machine's pure-Python primitives."""
    return CostModel(_derive_scheme_costs(measure_primitives()), label="measured")
