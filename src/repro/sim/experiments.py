"""The paper's three experiments, packaged as reusable functions (§4.4).

* :func:`capacity_test` — Fig. 4: sweep the request rate in factors of two
  up to the deployment's maximum and record throughput vs. L95.
* :func:`steady_state` — Fig. 5a / Table 4: a long run at knee capacity on
  DO-31-G, yielding L_θ^net, L_50^net, L_95^net, δ_res and η_θ.
* :func:`payload_sweep` — Fig. 5b: repeat the steady-state run for payload
  sizes 256 B … 4 KiB.

Simulated durations are scaled down from the paper's 60 s / 300 s (the DES
models a 127-node network on one core); the per-run request cap keeps the
Fig. 4 grid tractable while leaving enough samples for stable percentiles.
Caps can be raised via ``REPRO_SIM_MAX_REQUESTS`` for higher fidelity.
"""

from __future__ import annotations

import os

from .cluster import SimulatedThetaNetwork
from .costs import CostModel
from .deployments import Deployment
from .metrics import ExperimentMetrics, find_knee, summarize
from .workload import Workload

#: Paper payload sweep (§4.2): 256 B to 4 KiB.
PAYLOAD_SIZES = (256, 512, 1024, 2048, 4096)

_DEFAULT_CAPS = {7: 300, 31: 120, 127: 24}


def _max_requests(parties: int) -> int:
    override = os.environ.get("REPRO_SIM_MAX_REQUESTS")
    if override:
        return int(override)
    for size, cap in sorted(_DEFAULT_CAPS.items()):
        if parties <= size:
            return cap
    return min(_DEFAULT_CAPS.values())


def run_once(
    deployment: Deployment,
    scheme: str,
    rate: float,
    duration: float,
    payload_bytes: int = 256,
    cost_model: CostModel | None = None,
    max_requests: int | None = None,
    seed: int = 7,
    kg20_over_tob: bool = False,
) -> ExperimentMetrics:
    """One (scheme, deployment, rate) run, summarized."""
    network = SimulatedThetaNetwork(
        deployment, scheme, cost_model=cost_model, kg20_over_tob=kg20_over_tob
    )
    if max_requests is None:
        cap = _max_requests(deployment.parties)
        # Keep at least ~1.5 simulated seconds of load at high rates so the
        # grace window is long enough for the pipeline to produce results.
        max_requests = max(cap, int(1.5 * rate))
    workload = Workload(
        rate=rate,
        duration=duration,
        payload_bytes=payload_bytes,
        seed=seed,
        max_requests=max_requests,
    )
    # Simulate just past the grace horizon: completions after it do not
    # enter any metric, and draining a saturated 127-node queue would cost
    # (simulated) minutes for nothing.
    horizon = workload.effective_duration * 1.1
    result = network.run(workload, until=horizon + 0.25)
    return summarize(result, deployment.quorum, deployment.parties)


def capacity_test(
    deployment: Deployment,
    scheme: str,
    rates: list[int] | None = None,
    duration: float = 10.0,
    cost_model: CostModel | None = None,
    max_requests: int | None = None,
) -> list[ExperimentMetrics]:
    """Fig. 4: the throughput–latency curve for one scheme and deployment."""
    points = []
    for rate in rates if rates is not None else deployment.rates():
        points.append(
            run_once(
                deployment,
                scheme,
                rate,
                duration,
                cost_model=cost_model,
                max_requests=max_requests,
            )
        )
    return points


def knee_capacity(
    deployment: Deployment,
    scheme: str,
    cost_model: CostModel | None = None,
    duration: float = 10.0,
) -> ExperimentMetrics:
    """The knee point of a capacity test (§4.4's 'knee capacity')."""
    return find_knee(capacity_test(deployment, scheme, cost_model=cost_model, duration=duration))


def steady_state(
    deployment: Deployment,
    scheme: str,
    rate: float,
    duration: float = 60.0,
    payload_bytes: int = 256,
    cost_model: CostModel | None = None,
    max_requests: int | None = None,
) -> ExperimentMetrics:
    """Fig. 5a / Table 4: a long run at (typically) the knee rate."""
    cap = max_requests
    if cap is None:
        # Steady-state runs want more samples than capacity sweeps.
        cap = 4 * _max_requests(deployment.parties)
    return run_once(
        deployment,
        scheme,
        rate,
        duration,
        payload_bytes=payload_bytes,
        cost_model=cost_model,
        max_requests=cap,
    )


def payload_sweep(
    deployment: Deployment,
    scheme: str,
    rate: float,
    payload_sizes: tuple[int, ...] = PAYLOAD_SIZES,
    duration: float = 30.0,
    cost_model: CostModel | None = None,
) -> list[ExperimentMetrics]:
    """Fig. 5b: L_θ as a function of the request payload size."""
    return [
        steady_state(
            deployment,
            scheme,
            rate,
            duration=duration,
            payload_bytes=size,
            cost_model=cost_model,
        )
        for size in payload_sizes
    ]
