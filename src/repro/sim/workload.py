"""Open-loop workload generation for the capacity and steady-state tests.

The paper's benchmarking client "creates and schedules requests to the
Θ-network according to the experiment parameters" (§4.1): a fixed request
rate held for the experiment duration, with payload sizes from 256 B to
4 KiB (§4.2).  Arrivals are evenly spaced with light deterministic jitter
(an open-loop generator: the client never waits for responses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Workload:
    """One experiment's request schedule."""

    rate: float  # requests per second
    duration: float  # seconds of request generation
    payload_bytes: int = 256
    jitter_fraction: float = 0.02
    seed: int = 7
    max_requests: int | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")

    def arrival_times(self) -> list[float]:
        """Client-side submission times of every request."""
        rng = random.Random(self.seed)
        spacing = 1.0 / self.rate
        count = int(self.rate * self.duration)
        if self.max_requests is not None:
            count = min(count, self.max_requests)
        times = []
        for index in range(count):
            jitter = rng.uniform(-self.jitter_fraction, self.jitter_fraction)
            times.append(max(0.0, (index + 0.5 + jitter) * spacing))
        return times

    @property
    def request_count(self) -> int:
        count = int(self.rate * self.duration)
        if self.max_requests is not None:
            count = min(count, self.max_requests)
        return count

    @property
    def effective_duration(self) -> float:
        """Duration actually covered by the (possibly capped) schedule."""
        return self.request_count / self.rate
