"""The six deployment configurations of Table 2."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .latency import Region, assign_regions

_GLOBAL_REGIONS = [Region.FRA1, Region.SYD1, Region.TOR1, Region.SFO3]


@dataclass(frozen=True)
class Deployment:
    """One row of Table 2."""

    acronym: str
    size_label: str
    parties: int
    threshold: int  # t; quorum = t + 1 (the paper's "threshold" column is t+1)
    regions: tuple[Region, ...]
    max_rate: int  # requests per second, top of the capacity sweep

    @property
    def quorum(self) -> int:
        return self.threshold + 1

    def node_regions(self) -> list[Region]:
        return assign_regions(self.parties, list(self.regions))

    @property
    def is_global(self) -> bool:
        return len(self.regions) > 1

    def rates(self) -> list[int]:
        """The capacity-test request rates: 1, 2, 4, ... max_rate (§4.2)."""
        rates, rate = [], 1
        while rate <= self.max_rate:
            rates.append(rate)
            rate *= 2
        return rates


def _make(acronym, size_label, parties, quorum, regions, max_rate) -> Deployment:
    return Deployment(acronym, size_label, parties, quorum - 1, tuple(regions), max_rate)


#: Table 2: acronym → deployment.  The paper's "threshold" column is the
#: reconstruction quorum t+1 (3-of-7, 11-of-31, 43-of-127 under n = 3t+1).
DEPLOYMENTS: dict[str, Deployment] = {
    d.acronym: d
    for d in (
        _make("DO-7-L", "small", 7, 3, [Region.FRA1], 1024),
        _make("DO-7-G", "small", 7, 3, _GLOBAL_REGIONS, 1024),
        _make("DO-31-L", "medium", 31, 11, [Region.FRA1], 512),
        _make("DO-31-G", "medium", 31, 11, _GLOBAL_REGIONS, 512),
        _make("DO-127-L", "large", 127, 43, [Region.FRA1], 64),
        _make("DO-127-G", "large", 127, 43, _GLOBAL_REGIONS, 64),
    )
}


def get_deployment(acronym: str) -> Deployment:
    if acronym not in DEPLOYMENTS:
        raise ConfigurationError(
            f"unknown deployment {acronym!r}; known: {sorted(DEPLOYMENTS)}"
        )
    return DEPLOYMENTS[acronym]
