"""Region model and inter-node latency matrix (Table 2 of the paper).

The paper deploys in four DigitalOcean regions — FRA1 (Frankfurt), SYD1
(Sydney), TOR1 (Toronto), SFO3 (San Francisco) — and reports round-trip
times of ≈0.65 ms within a datacenter and ≈100 ms / 43 ms between regions.
We interpret the global figures as: the transatlantic pair TOR1–SFO3 and
FRA1–TOR1 sit near the lower bound, while pairs involving SYD1 sit at or
above the ≈100 ms figure (real-world geography; the paper reports the two
representative values).  Message latency is RTT/2 plus small lognormal
jitter.
"""

from __future__ import annotations

import enum
import math
import random

from ..errors import ConfigurationError


class Region(enum.Enum):
    """DigitalOcean regions used in the paper's deployments."""

    FRA1 = "fra1"
    SYD1 = "syd1"
    TOR1 = "tor1"
    SFO3 = "sfo3"


#: Round-trip times in seconds between regions (symmetric).
_RTT: dict[frozenset[Region], float] = {
    frozenset({Region.FRA1}): 0.00065,
    frozenset({Region.SYD1}): 0.00065,
    frozenset({Region.TOR1}): 0.00065,
    frozenset({Region.SFO3}): 0.00065,
    frozenset({Region.FRA1, Region.TOR1}): 0.100,
    frozenset({Region.FRA1, Region.SFO3}): 0.143,
    frozenset({Region.FRA1, Region.SYD1}): 0.100,
    frozenset({Region.TOR1, Region.SFO3}): 0.043,
    frozenset({Region.TOR1, Region.SYD1}): 0.100,
    frozenset({Region.SFO3, Region.SYD1}): 0.100,
}


def rtt(a: Region, b: Region) -> float:
    """Round-trip time between two regions in seconds."""
    key = frozenset({a, b})
    if key not in _RTT:
        raise ConfigurationError(f"no RTT entry for {a} <-> {b}")
    return _RTT[key]


class LatencyModel:
    """One-way message latency with deterministic pseudo-random jitter."""

    def __init__(self, jitter_fraction: float = 0.05, seed: int = 2023):
        self._jitter = jitter_fraction
        self._rng = random.Random(seed)

    def one_way(self, src: Region, dst: Region) -> float:
        """Sample the one-way delay for a message src → dst."""
        base = rtt(src, dst) / 2.0
        if self._jitter <= 0:
            return base
        # Lognormal multiplicative jitter centred on 1 (long tail upward,
        # like real WAN links).
        sigma = self._jitter
        factor = math.exp(self._rng.gauss(0.0, sigma))
        return base * factor

    def average_rtt(self, regions: list[Region]) -> float:
        """Mean pairwise RTT of a deployment (the Table 2 column)."""
        if len(regions) < 2:
            return rtt(regions[0], regions[0]) if regions else 0.0
        total, count = 0.0, 0
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                total += rtt(a, b)
                count += 1
        return total / count


def assign_regions(parties: int, regions: list[Region]) -> list[Region]:
    """Round-robin node → region assignment (node ids 1..n)."""
    if not regions:
        raise ConfigurationError("deployment needs at least one region")
    return [regions[i % len(regions)] for i in range(parties)]
