"""Minimal discrete-event simulation engine.

A binary-heap event loop plus the one resource the evaluation needs: a
single-server FIFO CPU (the paper pins each Thetacrypt container to 1 vCPU,
§4.1).  Deterministic: same seed, same schedule, same results.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable

from ..errors import SimulationError

Event = Callable[[], None]


class Simulator:
    """Event heap with monotonically advancing virtual time."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._processed = 0

    def schedule(self, delay: float, event: Event) -> None:
        """Run ``event`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), event))

    def run(self, until: float | None = None) -> None:
        """Process events until the heap drains (or virtual time ``until``)."""
        while self._heap:
            time, _, event = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            event()
            self._processed += 1

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._heap)


class FifoCpu:
    """Single-server FIFO queue: one vCPU executing crypto jobs in order.

    Jobs are submitted as ``(cost_fn, done_fn)`` pairs; ``cost_fn`` runs when
    the job *starts* (so the cost can depend on up-to-date protocol state,
    e.g. "this share is residual, just drop it") and returns the CPU seconds
    consumed; ``done_fn`` fires at completion.  Queueing here is what
    produces the latency blow-up past the knee point in the capacity test.
    """

    __slots__ = ("_simulator", "_queue", "_running", "busy_time", "jobs_executed")

    def __init__(self, simulator: Simulator):
        self._simulator = simulator
        self._queue: deque[tuple[Callable[[], float], Event | None]] = deque()
        self._running = False
        self.busy_time = 0.0
        self.jobs_executed = 0

    def submit(self, cost_fn: Callable[[], float], done: Event | None = None) -> None:
        """Enqueue a job (FIFO)."""
        self._queue.append((cost_fn, done))
        if not self._running:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._running = False
            return
        self._running = True
        cost_fn, done = self._queue.popleft()
        cost = cost_fn()
        if cost < 0:
            raise SimulationError(f"negative job cost {cost}")
        self.busy_time += cost
        self.jobs_executed += 1
        self._simulator.schedule(cost, lambda: self._complete(done))

    def _complete(self, done: Event | None) -> None:
        if done is not None:
            done()
        self._start_next()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
