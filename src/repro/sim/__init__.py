"""Evaluation substrate: a deterministic discrete-event Θ-network simulator.

The paper's evaluation ran on up to 127 DigitalOcean VMs across four
regions.  This package reproduces that testbed in a discrete-event
simulation: each node has one vCPU (a FIFO queue), crypto operations take
calibrated CPU time, and messages travel over the Table 2 latency matrix.
The protocol flows simulated are exactly those of our core layer (share →
verify → combine; FROST's two rounds), so the simulator exercises the same
message complexity as the real service, just with modeled time instead of
wall-clock time.

See DESIGN.md ("Substitutions") for why this preserves the paper's claims.
"""

from .events import Simulator, FifoCpu
from .latency import Region, LatencyModel
from .costs import CostModel, calibrated_cost_model, measured_cost_model
from .deployments import Deployment, DEPLOYMENTS
from .cluster import SimulatedThetaNetwork, RequestSample
from .workload import Workload
from .metrics import (
    ExperimentMetrics,
    latency_percentile,
    network_node_metrics,
    residual_delay_factor,
    latency_fairness_index,
    find_knee,
)
from .experiments import capacity_test, steady_state, payload_sweep

__all__ = [
    "Simulator",
    "FifoCpu",
    "Region",
    "LatencyModel",
    "CostModel",
    "calibrated_cost_model",
    "measured_cost_model",
    "Deployment",
    "DEPLOYMENTS",
    "SimulatedThetaNetwork",
    "RequestSample",
    "Workload",
    "ExperimentMetrics",
    "latency_percentile",
    "network_node_metrics",
    "residual_delay_factor",
    "latency_fairness_index",
    "find_knee",
    "capacity_test",
    "steady_state",
    "payload_sweep",
]
