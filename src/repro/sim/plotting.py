"""Text-mode plotting for the experiment harness (no matplotlib offline).

Renders the paper's figure shapes directly into benchmark output:
throughput–latency curves (Fig. 4) and grouped bar charts (Fig. 5a).
Log-scaled axes because both knees and latency walls span decades.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _log_position(value: float, low: float, high: float, width: int) -> int:
    if value <= 0:
        return 0
    span = math.log10(high / low) if high > low else 1.0
    fraction = math.log10(max(value, low) / low) / span
    return min(width - 1, max(0, round(fraction * (width - 1))))


def scatter_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 68,
    height: int = 18,
    x_label: str = "throughput (req/s)",
    y_label: str = "L95 (s)",
) -> str:
    """Render named (x, y) series on log–log axes as ASCII art."""
    points = [(x, y) for pts in series.values() for x, y in pts if x > 0 and y > 0]
    if not points:
        return "(no data)"
    x_low = min(x for x, _ in points)
    x_high = max(x for x, _ in points)
    y_low = min(y for _, y in points)
    y_high = max(y for _, y in points)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            column = _log_position(x, x_low, x_high, width)
            row = height - 1 - _log_position(y, y_low, y_high, height)
            grid[row][column] = marker
    lines = [f"  {y_label}  (log scale, {y_low:.3g} … {y_high:.3g})"]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(
        f"   {x_label}  (log scale, {x_low:.3g} … {x_high:.3g})   " + "  ".join(legend)
    )
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "ms",
) -> str:
    """Horizontal bars, linear scale (Fig. 5a's latency bars)."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    lines = []
    for name, value in values.items():
        bar = "█" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(f"  {name:>8s} |{bar} {value:.1f} {unit}")
    return "\n".join(lines)
