"""Command-line front end for the Θ-network simulator.

Regenerate any experiment series as CSV without going through pytest::

    python3 -m repro.sim.cli capacity --deployment DO-7-L --scheme sg02
    python3 -m repro.sim.cli steady   --deployment DO-31-G --scheme kg20 --rate 4
    python3 -m repro.sim.cli payload  --deployment DO-31-G --scheme sg02 --rate 8

Output is one CSV row per measurement on stdout (pipe into a file or a
plotting tool of choice).
"""

from __future__ import annotations

import argparse
import sys

from .deployments import DEPLOYMENTS, get_deployment
from .experiments import PAYLOAD_SIZES, capacity_test, payload_sweep, steady_state
from .metrics import ExperimentMetrics, find_knee

_FIELDS = [
    "scheme", "deployment", "rate", "payload_bytes", "offered", "completed",
    "throughput", "l50", "l95", "l_theta_net", "l50_net", "l95_net",
    "delta_res", "eta_theta", "mean_utilization", "max_utilization",
]


def _emit_header() -> None:
    print(",".join(_FIELDS))


def _emit(metrics: ExperimentMetrics) -> None:
    values = []
    for field in _FIELDS:
        value = getattr(metrics, field)
        values.append(f"{value:.6f}" if isinstance(value, float) else str(value))
    print(",".join(values))


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Θ-network simulator CLI")
    parser.add_argument(
        "experiment", choices=["capacity", "steady", "payload", "knee"]
    )
    parser.add_argument(
        "--deployment", default="DO-7-L", choices=sorted(DEPLOYMENTS)
    )
    parser.add_argument("--scheme", default="sg02")
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--duration", type=float, default=10.0)
    args = parser.parse_args(argv)

    deployment = get_deployment(args.deployment)
    _emit_header()
    if args.experiment == "capacity":
        for point in capacity_test(deployment, args.scheme, duration=args.duration):
            _emit(point)
    elif args.experiment == "knee":
        points = capacity_test(deployment, args.scheme, duration=args.duration)
        _emit(find_knee(points))
    elif args.experiment == "steady":
        if args.rate is None:
            sys.exit("steady needs --rate (typically the knee capacity)")
        _emit(
            steady_state(
                deployment, args.scheme, rate=args.rate, duration=args.duration
            )
        )
    elif args.experiment == "payload":
        if args.rate is None:
            sys.exit("payload needs --rate (typically the knee capacity)")
        for point in payload_sweep(
            deployment,
            args.scheme,
            rate=args.rate,
            payload_sizes=PAYLOAD_SIZES,
            duration=args.duration,
        ):
            _emit(point)


if __name__ == "__main__":
    main()
