"""The simulated Θ-network: protocol flows over modeled CPUs and links.

Simulates exactly the flows of :mod:`repro.core`: the client fans each
request out to all n nodes; every node admits the request, computes its
partial result, and broadcasts it; arriving shares are verified (or buffered
if they beat the request, or cheaply dropped if the instance already
finished — those are the paper's "residual messages"); at t+1 valid shares
the node combines.  KG20 runs its two rounds, waiting for all n members in
each (§4.5 semantics).

Every node owns one FIFO vCPU; every message pays a deserialization
overhead; costs come from :class:`~repro.sim.costs.CostModel` and delays
from :class:`~repro.sim.latency.LatencyModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..network.faults import FaultInjector, FaultPlan
from .costs import CostModel, calibrated_cost_model
from .deployments import Deployment
from .events import FifoCpu, Simulator
from .latency import LatencyModel, Region
from .workload import Workload


@dataclass
class RequestSample:
    """Per-(request, node) latency sample: the paper's L^node data points."""

    __slots__ = ("request_id", "node_id", "received_at", "finished_at")

    request_id: int
    node_id: int
    received_at: float
    finished_at: float | None

    @property
    def latency(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.received_at


@dataclass
class SimResult:
    """Everything one experiment run produced."""

    scheme: str
    deployment: str
    workload: Workload
    samples: list[RequestSample]
    request_first_finish: dict[int, float]
    cpu_utilization: dict[int, float]
    sim_time: float
    events: int
    # Chaos accounting when a FaultPlan was active: kind -> injection count
    # (same taxonomy as the repro_faults_injected counter).
    faults_injected: dict[str, int] = field(default_factory=dict)


class _St:
    """Per-(node, request) protocol state (lean on purpose: hot path)."""

    __slots__ = (
        "started",
        "finished",
        "aborted",
        "combining",
        "valid",
        "buffered",
        "buffered_bad",
        "mode",
        "commits",
        "buffered_commits",
        "round2_queued",
        "round2_done",
        "zshares",
    )

    def __init__(self) -> None:
        self.started = False
        self.finished = False
        self.aborted = False
        self.combining = False
        self.valid = 0
        self.buffered = 0
        self.buffered_bad = 0
        self.mode = 0
        self.commits = 0
        self.buffered_commits = 0
        self.round2_queued = False
        self.round2_done = False
        self.zshares = 0


class SimulatedThetaNetwork:
    """One (scheme, deployment) simulation context; ``run`` per workload."""

    def __init__(
        self,
        deployment: Deployment,
        scheme: str,
        cost_model: CostModel | None = None,
        latency_model: LatencyModel | None = None,
        client_region: Region = Region.FRA1,
        kg20_over_tob: bool = False,
        tob_sequencer: int = 1,
        crashed_nodes: set[int] | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.deployment = deployment
        self.scheme = scheme
        self.costs = (cost_model or calibrated_cost_model()).for_scheme(scheme)
        self.latency = latency_model or LatencyModel()
        self.client_region = client_region
        self.kg20_over_tob = kg20_over_tob
        self.tob_sequencer = tob_sequencer
        # Fault injection: crashed nodes never process requests or messages
        # (1-based ids, as everywhere).  Non-interactive schemes tolerate up
        # to t of them; KG20's fixed signing group stalls on any.
        self.crashed_nodes = crashed_nodes or set()
        if any(not 1 <= c <= deployment.parties for c in self.crashed_nodes):
            raise ConfigurationError("crashed node id out of range")
        # Seeded chaos: the same FaultPlan the asyncio service accepts
        # (docs/robustness.md), mapped onto simulated links and clocks.
        self.fault_plan = fault_plan
        if fault_plan is not None:
            plan_nodes = {c.node for c in fault_plan.crashes} | set(
                fault_plan.byzantine
            )
            if any(not 1 <= c <= deployment.parties for c in plan_nodes):
                raise ConfigurationError("fault plan node id out of range")
        self.regions = deployment.node_regions()
        if scheme == "kg20" and deployment.parties < 2:
            raise ConfigurationError("KG20 needs at least 2 parties")

    # -- wiring ---------------------------------------------------------------

    def run(self, workload: Workload, until: float | None = None) -> SimResult:
        """Simulate one workload; ``until`` bounds virtual time.

        Every §4.3 metric only looks at events inside the grace window
        (1.1 × the experiment duration), so the capacity sweeps pass a
        bound just past it instead of draining saturated queues for
        (simulated) minutes.  ``None`` runs to completion.
        """
        sim = Simulator()
        n = self.deployment.parties
        quorum = self.deployment.quorum
        costs = self.costs
        msg_cost = costs.message(n)
        arrivals = workload.arrival_times()
        request_count = len(arrivals)
        cpus = [FifoCpu(sim) for _ in range(n)]
        states = [[_St() for _ in range(request_count)] for _ in range(n)]
        samples: list[list[RequestSample | None]] = [
            [None] * request_count for _ in range(n)
        ]
        first_finish: dict[int, float] = {}
        regions = self.regions
        lat = self.latency.one_way
        client_region = self.client_region
        interactive = self.scheme == "kg20"
        crashed = {c - 1 for c in self.crashed_nodes}  # 0-based internally
        plan = self.fault_plan
        # Fresh injector per run: the same network object replays the same
        # fault schedule on every run (determinism contract of FaultPlan).
        injector = FaultInjector(plan) if plan is not None else None
        fault_counts: dict[str, int] = {}

        def count_fault(kind: str) -> None:
            fault_counts[kind] = fault_counts.get(kind, 0) + 1

        def lost_to_crash(i: int, r: int) -> bool:
            """Crash-*recovery* semantics: a node that crashed while this
            request was in flight lost its volatile protocol state, so after
            recovery the instance is aborted — not silently resumed with its
            pre-crash share counters intact.  Mirrors the asyncio node, which
            journals such instances and restores them as ``crash_recovery``
            aborts on restart."""
            if plan is None:
                return False
            st = states[i][r]
            if st.aborted:
                return True
            if st.finished:
                return False
            sample = samples[i][r]
            if sample is None:
                return False
            since = sample.received_at
            now = sim.now
            for crash in plan.crashes:
                if crash.node == i + 1 and since < crash.at <= now:
                    st.aborted = True
                    count_fault("crash_recovery")
                    return True
            return False

        def deliver(src: int, dst: int, delay_extra: float, fn, corrupted=None) -> None:
            if dst in crashed:
                return
            if plan is not None:
                now = sim.now
                if plan.crashed(src + 1, now):
                    count_fault("crash")
                    return
                if plan.partitioned(src + 1, dst + 1, now):
                    count_fault("partition")
                    return
            copies = 1
            extra = 0.0
            if injector is not None:
                decision = injector.decide(src + 1, dst + 1)
                if decision.drop:
                    count_fault("drop")
                    return
                if decision.corrupt:
                    count_fault("corrupt")
                    if corrupted is None:
                        # No corruption model for this message type: the
                        # receiver cannot parse the frame, so it is lost.
                        return
                    fn = corrupted
                if decision.delay > 0.0:
                    count_fault("delay")
                    extra += decision.delay
                if decision.reorder:
                    count_fault("reorder")
                    extra += plan.reorder_hold
                if decision.duplicate:
                    count_fault("duplicate")
                    copies = 2
            if self.kg20_over_tob and interactive:
                seq = self.tob_sequencer - 1
                delay = lat(regions[src], regions[seq]) + lat(
                    regions[seq], regions[dst]
                )
            else:
                delay = lat(regions[src], regions[dst])

            def arrive(fn=fn) -> None:
                # Crash windows are checked at delivery time too: a message
                # in flight when the recipient dies is lost with it.
                if plan is not None and plan.crashed(dst + 1, sim.now):
                    count_fault("crash")
                    return
                fn()

            for _ in range(copies):
                sim.schedule(delay + delay_extra + extra, arrive)

        def record_finish(i: int, r: int) -> None:
            if lost_to_crash(i, r):
                return  # crashed during the combine: the result died with it
            st = states[i][r]
            st.finished = True
            sample = samples[i][r]
            assert sample is not None
            sample.finished_at = sim.now
            if r not in first_finish:
                first_finish[r] = sim.now

        # ---- non-interactive flow ------------------------------------------

        def maybe_combine(i: int, r: int) -> None:
            st = states[i][r]
            if (
                st.started
                and not st.finished
                and not st.combining
                and st.valid >= quorum
                and not lost_to_crash(i, r)
            ):
                st.combining = True
                cpus[i].submit(
                    lambda: costs.combine(quorum),
                    lambda: record_finish(i, r),
                )

        def queue_buffered_verify(i: int, r: int, valid: bool = True) -> None:
            st = states[i][r]

            def cost() -> float:
                if st.finished:
                    st.mode = 0
                    return costs.drop_overhead
                st.mode = 2
                return costs.share_verify

            def done() -> None:
                if st.mode == 2 and valid:
                    st.valid += 1
                    maybe_combine(i, r)

            cpus[i].submit(cost, done)

        def on_share(j: int, r: int, valid: bool = True) -> None:
            # ``valid=False`` models a corrupted/byzantine share: the receiver
            # pays the full verification cost but the share never counts
            # toward the quorum (it cannot poison the combine).
            st = states[j][r]

            def cost() -> float:
                if st.finished:
                    st.mode = 0
                    return costs.drop_overhead
                if not st.started:
                    st.mode = 1
                    return msg_cost
                st.mode = 2
                return msg_cost + costs.share_verify

            def done() -> None:
                if st.mode == 1:
                    if valid:
                        st.buffered += 1
                    else:
                        st.buffered_bad += 1
                elif st.mode == 2 and valid:
                    st.valid += 1
                    maybe_combine(j, r)

            cpus[j].submit(cost, done)

        def own_share_done(i: int, r: int) -> None:
            st = states[i][r]
            st.started = True
            st.valid += 1
            for j in range(n):
                if j != i:
                    deliver(
                        i,
                        j,
                        0.0,
                        lambda j=j: on_share(j, r),
                        corrupted=lambda j=j: on_share(j, r, False),
                    )
            for _ in range(st.buffered):
                queue_buffered_verify(i, r)
            st.buffered = 0
            for _ in range(st.buffered_bad):
                queue_buffered_verify(i, r, valid=False)
            st.buffered_bad = 0
            maybe_combine(i, r)

        def on_request(i: int, r: int) -> None:
            if i in crashed:
                return
            if plan is not None and plan.crashed(i + 1, sim.now):
                count_fault("crash")
                return
            samples[i][r] = RequestSample(r, i + 1, sim.now, None)
            if interactive:
                cpus[i].submit(
                    lambda: costs.request(workload.payload_bytes) + costs.commit_gen,
                    lambda: commit_done(i, r),
                )
            else:
                cpus[i].submit(
                    lambda: costs.request(workload.payload_bytes) + costs.share_gen,
                    lambda: own_share_done(i, r),
                )

        # ---- KG20 two-round flow ------------------------------------------------

        def maybe_round2(i: int, r: int) -> None:
            st = states[i][r]
            if lost_to_crash(i, r):
                return
            if st.started and not st.round2_queued and st.commits == n:
                st.round2_queued = True
                cpus[i].submit(
                    lambda: costs.round2_base + n * costs.round2_per_party,
                    lambda: round2_done(i, r),
                )

        def maybe_frost_combine(i: int, r: int) -> None:
            st = states[i][r]
            if (
                st.round2_done
                and not st.finished
                and not st.combining
                and st.zshares == n
                and not lost_to_crash(i, r)
            ):
                st.combining = True
                cpus[i].submit(
                    lambda: costs.combine_base + n * costs.combine_per_share,
                    lambda: record_finish(i, r),
                )

        def round2_done(i: int, r: int) -> None:
            st = states[i][r]
            st.round2_done = True
            st.zshares += 1
            for j in range(n):
                if j != i:
                    deliver(i, j, 0.0, lambda j=j: on_zshare(j, r))
            maybe_frost_combine(i, r)

        def on_commit(j: int, r: int) -> None:
            st = states[j][r]

            def cost() -> float:
                return costs.drop_overhead if st.finished else msg_cost

            def done() -> None:
                if st.finished:
                    return
                if st.started:
                    st.commits += 1
                    maybe_round2(j, r)
                else:
                    st.buffered_commits += 1

            cpus[j].submit(cost, done)

        def on_zshare(j: int, r: int) -> None:
            st = states[j][r]

            def cost() -> float:
                return costs.drop_overhead if st.finished else msg_cost

            def done() -> None:
                if not st.finished:
                    st.zshares += 1
                    maybe_frost_combine(j, r)

            cpus[j].submit(cost, done)

        def commit_done(i: int, r: int) -> None:
            st = states[i][r]
            st.started = True
            st.commits += 1 + st.buffered_commits
            st.buffered_commits = 0
            for j in range(n):
                if j != i:
                    deliver(i, j, 0.0, lambda j=j: on_commit(j, r))
            maybe_round2(i, r)

        # ---- schedule the workload and run -------------------------------------

        for r, submit_time in enumerate(arrivals):
            for i in range(n):
                delay = submit_time + lat(client_region, regions[i])
                sim.schedule(delay, lambda i=i, r=r: on_request(i, r))
        sim.run(until=until)

        flat_samples = [s for row in samples for s in row if s is not None]
        elapsed = sim.now if sim.now > 0 else 1.0
        return SimResult(
            scheme=self.scheme,
            deployment=self.deployment.acronym,
            workload=workload,
            samples=flat_samples,
            request_first_finish=first_finish,
            cpu_utilization={
                i + 1: cpus[i].utilization(elapsed) for i in range(n)
            },
            sim_time=sim.now,
            events=sim.events_processed,
            faults_injected=fault_counts,
        )
