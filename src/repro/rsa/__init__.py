"""RSA substrate for the SH00 threshold signature scheme."""

from .keygen import RsaModulus, generate_shoup_modulus, FIXTURE_MODULI

__all__ = ["RsaModulus", "generate_shoup_modulus", "FIXTURE_MODULI"]
