"""RSA modulus generation for Shoup's threshold signatures (SH00).

SH00 requires ``n = p·q`` where both primes are *safe*
(``p = 2p' + 1``, ``q = 2q' + 1`` with ``p'``, ``q'`` prime) so the group of
squares Q_n is cyclic of order ``m = p'·q'``.  Safe-prime generation is slow
in pure Python for 1024-bit halves, so pre-generated fixture moduli for the
paper's sizes (512/1024/2048/4096) are shipped in :mod:`fixtures`; live
generation is exercised in tests at small sizes.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mathutils.primes import random_safe_prime


@dataclass(frozen=True)
class RsaModulus:
    """A Shoup modulus: n = p·q with safe primes p = 2p'+1, q = 2q'+1."""

    p: int
    q: int

    @property
    def n(self) -> int:
        return self.p * self.q

    @property
    def p_prime(self) -> int:
        return (self.p - 1) // 2

    @property
    def q_prime(self) -> int:
        return (self.q - 1) // 2

    @property
    def m(self) -> int:
        """Order of the squares subgroup Q_n (secret; used for key sharing)."""
        return self.p_prime * self.q_prime

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def random_square(self) -> int:
        """Uniform element of Q_n (a random square modulo n)."""
        while True:
            candidate = secrets.randbelow(self.n - 2) + 2
            if candidate % self.p == 0 or candidate % self.q == 0:
                continue
            return pow(candidate, 2, self.n)


def generate_shoup_modulus(bits: int) -> RsaModulus:
    """Generate a fresh Shoup modulus of roughly ``bits`` bits.

    Each prime has ``bits // 2`` bits.  This is minutes-slow for
    ``bits >= 2048`` in pure Python; prefer :data:`FIXTURE_MODULI` for the
    paper's benchmark sizes.
    """
    if bits < 32:
        raise ConfigurationError("modulus must have at least 32 bits")
    half = bits // 2
    while True:
        p, _ = random_safe_prime(half)
        q, _ = random_safe_prime(half)
        if p != q:
            return RsaModulus(p, q)


def _load_fixtures() -> dict[int, RsaModulus]:
    try:
        from .fixtures import SAFE_PRIME_PAIRS
    except ImportError:  # pragma: no cover - fixtures are generated in-repo
        return {}
    moduli = {}
    for bits, (p, q) in SAFE_PRIME_PAIRS.items():
        moduli[bits] = RsaModulus(p, q)
    return moduli


#: Pre-generated Shoup moduli keyed by modulus size in bits.
FIXTURE_MODULI: dict[int, RsaModulus] = _load_fixtures()


def modulus_for_bits(bits: int, allow_generate: bool = False) -> RsaModulus:
    """Fetch a fixture modulus, optionally falling back to live generation."""
    if bits in FIXTURE_MODULI:
        return FIXTURE_MODULI[bits]
    if allow_generate:
        return generate_shoup_modulus(bits)
    raise ConfigurationError(
        f"no fixture modulus for {bits} bits; available: "
        f"{sorted(FIXTURE_MODULI)} (pass allow_generate=True to generate)"
    )
