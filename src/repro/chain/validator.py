"""The validator node: the five-layer stack of Fig. 1, minimally.

Each validator owns one transport and multiplexes it into:

* the chain's consensus channel — a :class:`SequencerTob` ordering block
  proposals (our stand-in for the BFT consensus layer);
* a Thetacrypt P2P channel plus a TOB facade, exposed through a
  :class:`HostPlatformBridge` so a Thetacrypt instance can attach with the
  *proxy* modules of §3.6 and ride the chain's own networks.

Blocks are formed deterministically at delivery time (height and parent
assigned by every replica from its local chain), transactions execute
sequentially through the account state machine, and encrypted transactions
are handed to a ``decryptor`` — typically the co-located Θ instance — only
*after* their position is final, which is precisely the front-running
protection of §2.3.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..errors import NetworkError
from ..network.interfaces import MessageHandler, P2PNetwork, TotalOrderBroadcast
from ..network.manager import _Multiplexer
from ..network.proxy import HostPlatformBridge
from ..network.tob import SequencerTob
from ..serialization import Reader, encode_bytes, encode_int
from .state import AccountState
from .types import Block, Transaction, block_hash, genesis_parent

_TAG_THETA_P2P = 0x11
_TAG_CHAIN_TOB = 0x12

_TOB_BLOCK = 0x01
_TOB_THETA = 0x02

Decryptor = Callable[[bytes], Awaitable[bytes]]


class _ThetaTobFacade(TotalOrderBroadcast):
    """Thetacrypt's TOB view: messages ride the chain's consensus channel."""

    def __init__(self, validator: "ValidatorNode"):
        self._validator = validator
        self._handler: MessageHandler | None = None

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    async def submit(self, data: bytes) -> None:
        await self._validator._tob.submit(bytes([_TOB_THETA]) + data)

    async def deliver(self, origin: int, data: bytes) -> None:
        if self._handler is not None:
            await self._handler(origin, data)


class ValidatorNode:
    """One blockchain validator, optionally hosting a Θ bridge endpoint."""

    def __init__(
        self,
        node_id: int,
        parties: int,
        transport: P2PNetwork,
        sequencer_id: int = 1,
        decryptor: Decryptor | None = None,
        bridge_host: str | None = None,
        bridge_port: int = 0,
    ):
        self.node_id = node_id
        self.parties = parties
        self._transport = transport
        self._mux = _Multiplexer(transport)
        self._tob = SequencerTob(
            self._mux.channel(_TAG_CHAIN_TOB), sequencer_id=sequencer_id
        )
        self._tob.set_handler(self._on_tob)
        self.decryptor = decryptor
        self.mempool: list[Transaction] = []
        self.chain: list[Block] = []
        self.state = AccountState()
        self._commit_queue: asyncio.Queue[tuple[int, bytes]] = asyncio.Queue()
        self._executor_task: asyncio.Task | None = None
        self._height_events: dict[int, asyncio.Event] = {}
        # Optional Thetacrypt attachment point (Fig. 1's Θ module).
        self.theta_facade = _ThetaTobFacade(self)
        self.bridge: HostPlatformBridge | None = None
        if bridge_host is not None:
            self.bridge = HostPlatformBridge(
                bridge_host,
                bridge_port,
                self._mux.channel(_TAG_THETA_P2P),
                tob=self.theta_facade,
            )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        await self._transport.start()
        if self.bridge is not None:
            await self.bridge.start()
        self._executor_task = asyncio.get_running_loop().create_task(
            self._execute_committed()
        )

    async def stop(self) -> None:
        if self._executor_task is not None:
            self._executor_task.cancel()
        if self.bridge is not None:
            await self.bridge.stop()
        await self._transport.stop()

    @property
    def bridge_address(self) -> tuple[str, int]:
        if self.bridge is None or self.bridge._server is None:
            raise NetworkError("validator has no bridge endpoint")
        sock = self.bridge._server.sockets[0]
        return sock.getsockname()[0], sock.getsockname()[1]

    # -- client API ----------------------------------------------------------------

    def submit_transaction(self, transaction: Transaction) -> None:
        """Add a transaction to this validator's mempool."""
        self.mempool.append(transaction)

    async def propose(self) -> int:
        """Propose the current mempool as a block; returns the tx count.

        Any validator may propose; the TOB settles the block order, and all
        replicas assign heights deterministically at delivery.
        """
        if not self.mempool:
            return 0
        batch, self.mempool = self.mempool, []
        payload = encode_int(self.node_id) + encode_int(len(batch))
        for transaction in batch:
            payload += transaction.to_bytes()
        await self._tob.submit(bytes([_TOB_BLOCK]) + payload)
        return len(batch)

    async def await_height(self, height: int, timeout: float = 30.0) -> Block:
        """Wait until the chain reaches ``height``; returns that block."""
        if len(self.chain) < height:
            event = self._height_events.setdefault(height, asyncio.Event())
            await asyncio.wait_for(event.wait(), timeout)
        return self.chain[height - 1]

    # -- consensus delivery ---------------------------------------------------------

    async def _on_tob(self, origin: int, frame: bytes) -> None:
        if not frame:
            return
        tag, body = frame[0], frame[1:]
        if tag == _TOB_THETA:
            await self.theta_facade.deliver(origin, body)
        elif tag == _TOB_BLOCK:
            # Execution must stay sequential even though decryption awaits
            # the Θ network, so committed proposals go through a queue.
            await self._commit_queue.put((origin, body))

    async def _execute_committed(self) -> None:
        while True:
            origin, body = await self._commit_queue.get()
            reader = Reader(body)
            proposer = reader.read_int()
            count = reader.read_int()
            transactions = tuple(Transaction.read_from(reader) for _ in range(count))
            reader.finish()
            parent = block_hash(self.chain[-1]) if self.chain else genesis_parent()
            block = Block(len(self.chain) + 1, parent, proposer, transactions)
            await self._execute_block(block)
            self.chain.append(block)
            event = self._height_events.pop(block.height, None)
            if event is not None:
                event.set()

    async def _execute_block(self, block: Block) -> None:
        for transaction in block.transactions:
            payload = transaction.payload
            if transaction.encrypted:
                if self.decryptor is None:
                    self.state.rejected.append(
                        f"{transaction.tx_id}: no decryptor attached"
                    )
                    continue
                try:
                    # The order is already final here — decrypt-after-order.
                    payload = await self.decryptor(payload)
                except Exception as exc:  # noqa: BLE001 - journal and move on
                    self.state.rejected.append(f"{transaction.tx_id}: {exc}")
                    continue
            self.state.execute(payload)

    # -- inspection -------------------------------------------------------------------

    def head(self) -> Block | None:
        return self.chain[-1] if self.chain else None

    def state_root(self) -> bytes:
        return self.state.state_root()
