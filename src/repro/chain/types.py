"""Chain data types: transactions and blocks, with canonical hashing."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import SerializationError
from ..serialization import Reader, encode_bytes, encode_int, encode_str

_GENESIS_PARENT = bytes(32)


@dataclass(frozen=True)
class Transaction:
    """An opaque payload submitted by a client.

    ``encrypted`` marks ciphertext transactions (front-running protection):
    their payload is an SG02 ciphertext that validators threshold-decrypt
    only after the transaction's position in the chain is final.
    """

    sender: str
    payload: bytes
    encrypted: bool = False

    def to_bytes(self) -> bytes:
        return (
            encode_str(self.sender)
            + encode_bytes(self.payload)
            + encode_int(1 if self.encrypted else 0)
        )

    @staticmethod
    def read_from(reader: Reader) -> "Transaction":
        sender = reader.read_str()
        payload = reader.read_bytes()
        encrypted = reader.read_int()
        if encrypted not in (0, 1):
            raise SerializationError("invalid encrypted flag")
        return Transaction(sender, payload, bool(encrypted))

    @property
    def tx_id(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()[:16]


@dataclass(frozen=True)
class Block:
    """A batch of ordered transactions."""

    height: int
    parent: bytes
    proposer: int
    transactions: tuple[Transaction, ...]

    def to_bytes(self) -> bytes:
        body = (
            encode_int(self.height)
            + encode_bytes(self.parent)
            + encode_int(self.proposer)
            + encode_int(len(self.transactions))
        )
        for transaction in self.transactions:
            body += transaction.to_bytes()
        return body

    @staticmethod
    def from_bytes(data: bytes) -> "Block":
        reader = Reader(data)
        height = reader.read_int()
        parent = reader.read_bytes()
        proposer = reader.read_int()
        count = reader.read_int()
        transactions = tuple(Transaction.read_from(reader) for _ in range(count))
        reader.finish()
        return Block(height, parent, proposer, transactions)


def block_hash(block: Block) -> bytes:
    return hashlib.sha256(b"repro-chain-block" + block.to_bytes()).digest()


def genesis_parent() -> bytes:
    return _GENESIS_PARENT
