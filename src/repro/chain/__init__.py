"""A minimal blockchain host platform (the deployment of Fig. 1).

The paper's envisaged deployment embeds the Thetacrypt module (Θ) into each
node of a blockchain network that provides state-machine replication.  This
package supplies that host platform: validators with a mempool, a
round-robin block proposer over total-order broadcast, and a deterministic
account state machine — plus the bridge endpoint that lets a Thetacrypt
instance attach through the P2P/TOB *proxy* modules of §3.6.

The flagship application is the paper's front-running example: users submit
SG02-encrypted transactions; validators order ciphertexts first and only
then jointly decrypt and execute them.
"""

from .types import Block, Transaction, block_hash
from .state import AccountState
from .validator import ValidatorNode

__all__ = ["Block", "Transaction", "block_hash", "AccountState", "ValidatorNode"]
