"""Deterministic account state machine executed by every validator.

Transactions are tiny textual commands (kept human-readable for the demos)::

    mint <account> <amount>
    transfer <from> <to> <amount>

Execution is deterministic and sequential, so replicas that apply the same
block sequence hold identical state — the property Thetacrypt's service
semantics rely on (§3.2: each node "executes an application with
deterministic operations").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import ThetacryptError


class InvalidTransactionError(ThetacryptError):
    """The command was malformed or violated a balance constraint."""


@dataclass
class AccountState:
    """Account balances plus an applied-transaction journal."""

    balances: dict[str, int] = field(default_factory=dict)
    applied: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)

    def execute(self, command: bytes) -> None:
        """Apply one plaintext command; invalid commands are journaled."""
        try:
            self._apply(command.decode("utf-8", errors="strict"))
        except (InvalidTransactionError, UnicodeDecodeError) as exc:
            self.rejected.append(f"{command!r}: {exc}")

    def _apply(self, text: str) -> None:
        parts = text.split()
        if not parts:
            raise InvalidTransactionError("empty command")
        if parts[0] == "mint" and len(parts) == 3:
            account, amount = parts[1], self._amount(parts[2])
            self.balances[account] = self.balances.get(account, 0) + amount
        elif parts[0] == "transfer" and len(parts) == 4:
            source, target = parts[1], parts[2]
            amount = self._amount(parts[3])
            if self.balances.get(source, 0) < amount:
                raise InvalidTransactionError(
                    f"insufficient funds: {source} has "
                    f"{self.balances.get(source, 0)}, needs {amount}"
                )
            self.balances[source] -= amount
            self.balances[target] = self.balances.get(target, 0) + amount
        else:
            raise InvalidTransactionError(f"unknown command {parts[0]!r}")
        self.applied.append(text)

    @staticmethod
    def _amount(text: str) -> int:
        try:
            amount = int(text)
        except ValueError as exc:
            raise InvalidTransactionError(f"bad amount {text!r}") from exc
        if amount <= 0:
            raise InvalidTransactionError("amount must be positive")
        return amount

    def state_root(self) -> bytes:
        """Commitment to the balances (replicas must agree on this)."""
        digest = hashlib.sha256()
        for account in sorted(self.balances):
            digest.update(account.encode())
            digest.update(self.balances[account].to_bytes(16, "big", signed=False))
        return digest.digest()
