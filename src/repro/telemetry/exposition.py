"""Prometheus text exposition (format 0.0.4) and the node scrape endpoint.

The paper's testbed co-locates a Prometheus server with every node and
scrapes it for latency/throughput (§4.1).  :func:`render_text` turns one or
more registries into the text format any Prometheus server parses;
:class:`MetricsHttpServer` serves it over plain HTTP (``GET /metrics``) so
an unmodified Prometheus can scrape a Thetacrypt node, and the ``metrics``
RPC method returns the same document in-band for clients that already hold
an RPC connection.  :func:`parse_text` is the minimal inverse used by tests
and the ``make metrics-smoke`` gate.
"""

from __future__ import annotations

import asyncio
import math

from .registry import HistogramChild, MetricFamily, MetricRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\"", r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(items: tuple[tuple[str, str], ...]) -> str:
    if not items:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + inner + "}"


def _render_family(family: MetricFamily, lines: list[str]) -> None:
    lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
    lines.append(f"# TYPE {family.name} {family.metric_type}")
    children = sorted(family.children(), key=lambda c: c.label_items)
    for child in children:
        base = child.label_items
        if isinstance(child, HistogramChild):
            for bound, cumulative in child.bucket_counts():
                labels = (*base, ("le", _format_value(bound)))
                lines.append(
                    f"{family.name}_bucket{_format_labels(labels)} {cumulative}"
                )
            lines.append(
                f"{family.name}_sum{_format_labels(base)} "
                f"{_format_value(child.sum)}"
            )
            lines.append(
                f"{family.name}_count{_format_labels(base)} {child.count}"
            )
        else:
            lines.append(
                f"{family.name}{_format_labels(base)} "
                f"{_format_value(child.value)}"
            )


def render_text(*registries: MetricRegistry) -> str:
    """Render registries into one Prometheus text document.

    A node passes its private registry plus the process-global one; families
    appearing in several registries are rendered once (first wins).
    """
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for family in registry.collect():
            if family.name in seen:
                continue
            seen.add(family.name)
            _render_family(family, lines)
    return "\n".join(lines) + "\n" if lines else ""


def parse_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text back into ``{(name, labels): value}``.

    Intentionally minimal (no escape sequences beyond what we emit); it
    exists so tests and the smoke gate can assert on scrape output without
    an external Prometheus client library.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"unparseable sample line {line!r}")
        labels: tuple[tuple[str, str], ...] = ()
        if "{" in name_part:
            name, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            items = []
            for pair in _split_label_pairs(label_blob):
                label_name, _, label_value = pair.partition("=")
                items.append(
                    (
                        label_name,
                        label_value.strip('"')
                        .replace(r"\"", '"')
                        .replace(r"\n", "\n")
                        .replace(r"\\", "\\"),
                    )
                )
            labels = tuple(items)
        else:
            name = name_part
        value = float("inf") if value_part == "+Inf" else float(value_part)
        out[(name, labels)] = value
    return out


def _split_label_pairs(blob: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current))
    return [p for p in (p.strip() for p in pairs) if p]


class MetricsHttpServer:
    """A tiny asyncio HTTP/1.1 server exposing ``GET /metrics``.

    Uses only the standard library so the scrape endpoint works in every
    deployment the repo supports; anything but ``GET /metrics`` gets a 404.
    """

    def __init__(self, render, host: str, port: int):
        self._render = render  # () -> str, typically the node's merged view
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            return self._host, self._port
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers until the blank line
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1].startswith("/metrics?")
            ):
                body = self._render().encode("utf-8")
                status = "200 OK"
            else:
                body = b"not found\n"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
