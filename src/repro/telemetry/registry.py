"""Metric primitives and the registry that collects them.

The paper's evaluation co-locates a Prometheus server on every node
(§4.1); this module supplies the node-side half of that arrangement:
labeled :class:`Counter`, :class:`Gauge`, and :class:`Histogram` families
tracked by a :class:`MetricRegistry`.  A process-global default registry
(:func:`default_registry`) holds process-wide instruments (network
transports, crypto caches); each :class:`~repro.service.node.ThetacryptNode`
additionally owns a private registry so that per-node request metrics stay
isolated when many nodes share one process (the in-process test topology).

Histograms use fixed exponential buckets sized for crypto-op latencies
(250 µs … ≈130 s, factor 2) *and* retain a bounded window of raw
observations, so quantile extraction (p50/p95/p99) is exact over the
retained window instead of bucket-interpolated.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..errors import ThetacryptError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Exponential bucket ladder sized for threshold-crypto operation latencies:
#: sub-millisecond cache hits up to multi-minute RSA keygens.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    0.00025 * (2**i) for i in range(20)
)  # 250 µs … ≈131 s

#: Raw observations retained per histogram child for exact quantiles.
DEFAULT_SAMPLE_WINDOW = 2048


class TelemetryError(ThetacryptError):
    """Misuse of the metrics API (bad name, label mismatch, …)."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise TelemetryError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise TelemetryError(f"duplicate label names in {names!r}")
    return names


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


class _Child:
    """Per-label-set state; created via ``family.labels(...)``."""

    def __init__(self, family: "MetricFamily", labelvalues: tuple[str, ...]):
        self._family = family
        self._labelvalues = labelvalues
        self._lock = threading.Lock()

    @property
    def label_items(self) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self._family.labelnames, self._labelvalues))


class CounterChild(_Child):
    def __init__(self, family: "MetricFamily", labelvalues: tuple[str, ...]):
        super().__init__(family, labelvalues)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeChild(_Child):
    def __init__(self, family: "MetricFamily", labelvalues: tuple[str, ...]):
        super().__init__(family, labelvalues)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class HistogramChild(_Child):
    def __init__(self, family: "MetricFamily", labelvalues: tuple[str, ...]):
        super().__init__(family, labelvalues)
        self._buckets = [0] * (len(family.buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._samples: deque[float] = deque(maxlen=family.sample_window)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._buckets[bisect_left(self._family.buckets, value)] += 1
            self._sum += value
            self._count += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float | None:
        return None if self._count == 0 else self._min

    @property
    def maximum(self) -> float | None:
        return None if self._count == 0 else self._max

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative counts per upper bound, ending with ``+Inf``."""
        with self._lock:
            bounds = [*self._family.buckets, math.inf]
            cumulative, out = 0, []
            for bound, in_bucket in zip(bounds, self._buckets):
                cumulative += in_bucket
                out.append((bound, cumulative))
            return out

    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def quantile(self, q: float) -> float | None:
        """Exact quantile over the retained sample window (linear interp)."""
        return _quantile(self.samples(), q)


def _quantile(values: list[float], q: float) -> float | None:
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile {q!r} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


_CHILD_TYPES = {"counter": CounterChild, "gauge": GaugeChild, "histogram": HistogramChild}


class MetricFamily:
    """A named metric plus all its label-set children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ):
        self.name = _check_name(name)
        self.help_text = help_text
        if metric_type not in _CHILD_TYPES:
            raise TelemetryError(f"unknown metric type {metric_type!r}")
        self.metric_type = metric_type
        self.labelnames = _check_labelnames(labelnames)
        if metric_type == "histogram":
            bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
            if list(bounds) != sorted(set(bounds)):
                raise TelemetryError("histogram buckets must be sorted and unique")
            self.buckets: tuple[float, ...] = bounds
        else:
            if buckets is not None:
                raise TelemetryError(f"buckets are histogram-only, not {metric_type}")
            self.buckets = ()
        self.sample_window = sample_window
        self._children: dict[tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()

    def labels(self, *labelvalues: str, **labelkw: str):
        """Get-or-create the child for one label-value set."""
        if labelvalues and labelkw:
            raise TelemetryError("pass label values positionally or by name, not both")
        if labelkw:
            if set(labelkw) != set(self.labelnames):
                raise TelemetryError(
                    f"labels {sorted(labelkw)} != declared {sorted(self.labelnames)}"
                )
            values = tuple(str(labelkw[name]) for name in self.labelnames)
        else:
            values = tuple(str(v) for v in labelvalues)
        if len(values) != len(self.labelnames):
            raise TelemetryError(
                f"{self.name} expects {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = _CHILD_TYPES[self.metric_type](self, values)
                self._children[values] = child
            return child

    def _solo(self):
        """The single child of an unlabeled family."""
        if self.labelnames:
            raise TelemetryError(f"{self.name} is labeled; call .labels() first")
        return self.labels()

    # Unlabeled convenience: family.inc() / .set() / .observe() proxy to the
    # single child, so `counter("x", "…").inc()` works without .labels().
    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> list[_Child]:
        with self._lock:
            return list(self._children.values())

    # -- aggregate views (used by node.stats() summaries) ----------------------

    def total_count(self) -> int:
        return sum(c.count for c in self.children())

    def total_sum(self) -> float:
        return sum(c.sum for c in self.children())

    def merged_quantile(self, q: float) -> float | None:
        """Quantile over the pooled sample windows of all children."""
        pooled: list[float] = []
        for child in self.children():
            pooled.extend(child.samples())
        return _quantile(pooled, q)

    def merged_max(self) -> float | None:
        maxima = [c.maximum for c in self.children() if c.maximum is not None]
        return max(maxima) if maxima else None


class MetricRegistry:
    """Holds metric families and hands out idempotent get-or-create handles."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []
        self._lock = threading.RLock()

    def _get_or_create(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labelnames: Iterable[str],
        **kwargs,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.metric_type != metric_type:
                    raise TelemetryError(
                        f"{name} already registered as {family.metric_type}, "
                        f"not {metric_type}"
                    )
                if family.labelnames != labelnames:
                    raise TelemetryError(
                        f"{name} already registered with labels "
                        f"{family.labelnames}, not {labelnames}"
                    )
                return family
            family = MetricFamily(name, help_text, metric_type, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ) -> MetricFamily:
        return self._get_or_create(
            name,
            help_text,
            "histogram",
            labels,
            buckets=buckets,
            sample_window=sample_window,
        )

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Add a callback run before every :meth:`collect` (pull-style
        sources such as the crypto caches update their gauges here)."""
        with self._lock:
            self._collectors.append(collect)

    def collect(self) -> list[MetricFamily]:
        """Run pull collectors, then return families sorted by name."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop all families and collectors (tests/benchmarks)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


_DEFAULT = MetricRegistry()


def default_registry() -> MetricRegistry:
    """The process-global registry (network transports, crypto caches)."""
    return _DEFAULT


def counter(name: str, help_text: str, labels: Iterable[str] = ()) -> MetricFamily:
    return _DEFAULT.counter(name, help_text, labels)


def gauge(name: str, help_text: str, labels: Iterable[str] = ()) -> MetricFamily:
    return _DEFAULT.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str,
    labels: Iterable[str] = (),
    buckets: Iterable[float] | None = None,
) -> MetricFamily:
    return _DEFAULT.histogram(name, help_text, labels, buckets=buckets)


def summarize(family: MetricFamily | None) -> Mapping[str, float]:
    """count/mean/p50/p95/p99/max digest of a histogram family (all children
    pooled) — the shape ``ThetacryptNode.stats()["latency"]`` reports."""
    if family is None or family.total_count() == 0:
        return {}
    count = family.total_count()
    return {
        "count": count,
        "mean": family.total_sum() / count,
        "p50": family.merged_quantile(0.5),
        "p95": family.merged_quantile(0.95),
        "p99": family.merged_quantile(0.99),
        "max": family.merged_max(),
    }
