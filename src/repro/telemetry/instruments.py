"""Pre-bound instrument bundles for the three layers of the stack.

Naming follows the Prometheus conventions (``repro_`` namespace, ``_total``
for counters, base-unit ``_seconds``/``_bytes`` suffixes).  Two scopes:

* **Process scope** (the default registry): network transports — which may
  be constructed outside any node, e.g. a :class:`LocalHub` endpoint — and
  the process-wide crypto caches.  These carry a ``node`` label so several
  in-process nodes stay distinguishable.
* **Node scope** (a per-node registry): RPC and core/TRI metrics, created
  unlabeled-by-node because the registry itself is the node boundary — a
  Prometheus server scraping each node separately sees exactly its own
  numbers, as in the paper's per-node co-located setup.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import contextmanager

from .registry import MetricRegistry, default_registry

# Buckets for network send operations: these are queue/syscall latencies,
# far below protocol latencies, so the ladder starts at 10 µs.
NETWORK_SEND_BUCKETS: tuple[float, ...] = tuple(1e-05 * (2**i) for i in range(16))

# Buckets for event-loop scheduling lag: a healthy loop sits under 1 ms,
# an inline pairing product pushes it into the 100 ms+ decades.
LOOP_LAG_BUCKETS: tuple[float, ...] = tuple(1e-04 * (2**i) for i in range(16))


class ChannelMetrics:
    """Messages/bytes sent+received and send latency for one transport.

    Instantiated by every transport (`tcp`, `local`, `gossip`, `tob`, and
    the manager's logical `p2p` dispatch channel) against the process-global
    registry.
    """

    def __init__(
        self, node_id: int, channel: str, registry: MetricRegistry | None = None
    ):
        registry = registry if registry is not None else default_registry()
        labels = ("node", "channel", "direction")
        self._messages = registry.counter(
            "repro_network_messages_total",
            "Protocol frames sent/received per transport channel.",
            labels,
        )
        self._bytes = registry.counter(
            "repro_network_bytes_total",
            "Payload bytes sent/received per transport channel.",
            labels,
        )
        self._send_seconds = registry.histogram(
            "repro_network_send_seconds",
            "Latency of one send operation per transport channel.",
            ("node", "channel"),
            buckets=NETWORK_SEND_BUCKETS,
        )
        node = str(node_id)
        self._sent_messages = self._messages.labels(node, channel, "sent")
        self._sent_bytes = self._bytes.labels(node, channel, "sent")
        self._recv_messages = self._messages.labels(node, channel, "received")
        self._recv_bytes = self._bytes.labels(node, channel, "received")
        self._send_latency = self._send_seconds.labels(node, channel)

    def sent(self, nbytes: int, messages: int = 1) -> None:
        self._sent_messages.inc(messages)
        self._sent_bytes.inc(nbytes)

    def received(self, nbytes: int, messages: int = 1) -> None:
        self._recv_messages.inc(messages)
        self._recv_bytes.inc(nbytes)

    @contextmanager
    def time_send(self):
        started = time.perf_counter()
        try:
            yield
        finally:
            self._send_latency.observe(time.perf_counter() - started)


class RpcMetrics:
    """Service-layer instruments (held by :class:`RpcServer`)."""

    def __init__(self, registry: MetricRegistry):
        self.requests = registry.counter(
            "repro_rpc_requests_total",
            "RPC requests by method and outcome (ok/error/internal).",
            ("method", "outcome"),
        )
        self.latency = registry.histogram(
            "repro_rpc_latency_seconds",
            "Server-side RPC handling latency by method.",
            ("method",),
        )
        self.inflight = registry.gauge(
            "repro_rpc_inflight",
            "RPC requests currently being handled.",
        )
        self.connections = registry.counter(
            "repro_rpc_connections_total",
            "RPC client connections accepted.",
        )


class CoreMetrics:
    """Core-layer instruments (held by :class:`InstanceManager` and shared
    with every :class:`ProtocolExecutor` it launches)."""

    def __init__(self, registry: MetricRegistry):
        self.round_seconds = registry.histogram(
            "repro_tri_round_seconds",
            "Duration of one TRI round (local compute + waiting for the "
            "quorum of shares), by scheme and round index.",
            ("scheme", "round"),
        )
        self.messages = registry.counter(
            "repro_tri_messages_total",
            "Protocol messages delivered to executors: accepted shares vs "
            "rejected (invalid proof/share) ones.",
            ("scheme", "outcome"),
        )
        self.instances = registry.counter(
            "repro_instances_total",
            "Protocol instances terminated, by scheme and final status.",
            ("scheme", "status"),
        )
        self.instance_seconds = registry.histogram(
            "repro_instance_seconds",
            "Server-side instance latency (creation to finalization), by "
            "scheme; backs the stats() latency summary.",
            ("scheme",),
        )
        self.inflight = registry.gauge(
            "repro_instances_inflight",
            "Protocol instances currently created or running.",
        )
        self.backlog_buffered = registry.counter(
            "repro_backlog_buffered_total",
            "Early protocol messages buffered before instance creation.",
        )
        self.backlog_dropped = registry.counter(
            "repro_backlog_dropped_total",
            "Early protocol messages dropped on backlog overflow.",
        )
        self.aborts = registry.counter(
            "repro_instance_aborts_total",
            "Failed protocol instances by scheme and structured abort "
            "reason (timeout / insufficient_shares / byzantine_detected / "
            "aborted / internal).",
            ("scheme", "reason"),
        )
        self.rebroadcasts = registry.counter(
            "repro_round_rebroadcasts_total",
            "Watchdog re-broadcasts of this node's current-round messages "
            "for instances that stalled short of the timeout.",
            ("scheme",),
        )
        self.rejected = registry.counter(
            "repro_instance_rejected_total",
            "Submissions rejected before an executor was created, by "
            "structured reason (overloaded = pending-instance backlog full).",
            ("reason",),
        )
        self.coalesced_requests = registry.counter(
            "repro_requests_coalesced_total",
            "Duplicate-payload requests served without creating a new "
            "instance: joined one already in flight (inflight) or answered "
            "from the idempotent result cache (result_cache).",
            ("source",),
        )
        self.crypto_batches = registry.counter(
            "repro_crypto_coalesced_batches_total",
            "Cross-request crypto batches flushed to the worker pool by "
            "the coalescing admission layer, by batched operation.",
            ("op",),
        )
        self.crypto_batched_items = registry.counter(
            "repro_crypto_coalesced_items_total",
            "Individual requests carried inside cross-request crypto "
            "batches, by batched operation.",
            ("op",),
        )


class StorageMetrics:
    """Durability/recovery instruments (held by :class:`ThetacryptNode`
    when ``NodeConfig.data_dir`` is set; see docs/robustness.md)."""

    def __init__(self, registry: MetricRegistry):
        self.recoveries = registry.counter(
            "repro_recovery_runs_total",
            "Recovery passes executed at node start (one per boot of a "
            "node with a data_dir).",
        )
        self.recovered_keys = registry.gauge(
            "repro_recovery_keys",
            "Key shares reloaded from the durable keystore during the most "
            "recent recovery pass.",
        )
        self.recovered_instances = registry.counter(
            "repro_recovery_instances_total",
            "Instances restored during recovery, by outcome: finalized "
            "(served from the durable result cache) or aborted (in-flight "
            "at crash time, marked crash_recovery).",
            ("outcome",),
        )


class CryptoPoolMetrics:
    """Worker-pool instruments (held by :class:`repro.workers.CryptoPool`).

    ``outcome`` taxonomy of ``repro_crypto_pool_tasks_total``: ``ok`` (ran
    in a worker), ``error`` (ran in a worker and failed cryptographically,
    mirroring the inline failure), ``fallback`` (infrastructure failure —
    crash/pickling/disabled — so the caller re-ran the work inline).
    """

    def __init__(self, registry: MetricRegistry):
        self.tasks = registry.counter(
            "repro_crypto_pool_tasks_total",
            "Crypto-pool tasks by operation and outcome "
            "(ok / error / fallback).",
            ("op", "outcome"),
        )
        self.queue_depth = registry.gauge(
            "repro_crypto_pool_queue_depth",
            "Crypto-pool tasks submitted and not yet completed.",
        )
        self.task_seconds = registry.histogram(
            "repro_crypto_pool_task_seconds",
            "Wall-clock latency of one crypto-pool task (submit to "
            "result, queueing included), by operation.",
            ("op",),
        )
        self.workers = registry.gauge(
            "repro_crypto_pool_workers",
            "Configured worker processes of the live executor (0 when "
            "the pool is idle, disabled, or closed).",
        )
        self.policy_decisions = registry.counter(
            "repro_crypto_pool_policy_decisions_total",
            "Adaptive offload-policy rulings by operation, choice "
            "(offload / inline) and deciding gate (forced / few_cores / "
            "queue_full / pool_slower / probe / no_data / pool_ok).",
            ("op", "choice", "reason"),
        )
        self.blob_cache = registry.counter(
            "repro_crypto_pool_blob_cache_total",
            "Content-addressed key-blob cache events: retry = a task was "
            "re-run once with blobs attached after a worker-side miss.",
            ("event",),
        )


class PrecomputeMetrics:
    """Precompute-pipeline instruments (held by
    :class:`repro.core.orchestration.precompute.PrecomputeService`).

    ``source`` taxonomy of ``repro_precompute_served_total``: ``pool`` (the
    request consumed staged material — a pooled share or an eagerly
    pipelined instance), ``inline`` (nothing staged; the on-demand path
    ran).  ``outcome`` taxonomy of ``repro_precompute_refills_total``:
    ``ok`` / ``error`` / ``deferred`` (announce beyond the pool depth).
    """

    def __init__(self, registry: MetricRegistry):
        self.depth = registry.gauge(
            "repro_precompute_pool_depth",
            "Staged-but-unconsumed precompute entries per key and "
            "operation (kg20 nonce sets report op=\"kg20-nonce\").",
            ("key", "op"),
        )
        self.served = registry.counter(
            "repro_precompute_served_total",
            "Client requests by operation and serving source "
            "(pool / inline).",
            ("op", "source"),
        )
        self.refill_seconds = registry.histogram(
            "repro_precompute_refill_seconds",
            "Latency of one background refill (announce to staged), by "
            "operation.",
            ("op",),
        )
        self.refills = registry.counter(
            "repro_precompute_refills_total",
            "Background refill jobs by operation and outcome "
            "(ok / error / deferred).",
            ("op", "outcome"),
        )


class RouterMetrics:
    """Front-end router instruments (held by :class:`repro.router.core.Router`).

    One registry per router instance, mirroring the per-node registries:
    a Prometheus server scraping each router sees exactly its own
    traffic.  ``repro_router_requests_total`` is the scrapeable per-shard
    throughput breakdown — its per-``group`` rate is each shard's served
    request rate through this router.
    """

    def __init__(self, registry: MetricRegistry):
        self.requests = registry.counter(
            "repro_router_requests_total",
            "Requests forwarded to a threshold group, by owning group, "
            "method and outcome (ok / error / unroutable).",
            ("group", "method", "outcome"),
        )
        self.upstream_seconds = registry.histogram(
            "repro_router_upstream_seconds",
            "Upstream latency of one routed request (fan-out to the "
            "first group answer, redirects included), by group.",
            ("group",),
        )
        self.inflight = registry.gauge(
            "repro_router_inflight",
            "Routed requests currently in flight, by owning group.",
            ("group",),
        )
        self.redirects = registry.counter(
            "repro_router_redirects_total",
            "wrong_group redirects followed to the owning group named in "
            "the error payload, by who followed them (router / client).",
            ("source",),
        )


def client_redirects_counter():
    """The topology-aware client's share of ``repro_router_redirects_total``.

    Lives in the default registry (clients have no registry of their
    own), labeled ``source="client"`` so router- and client-side
    redirect-following stay distinguishable in one exposition.
    """
    return default_registry().counter(
        "repro_router_redirects_total",
        "wrong_group redirects followed to the owning group named in "
        "the error payload, by who followed them (router / client).",
        ("source",),
    ).labels("client")


class EventLoopLagSampler:
    """Heartbeat measuring asyncio scheduling delay.

    Sleeps ``interval`` seconds in a loop and records how much *later*
    than requested each wake-up lands in the
    ``repro_event_loop_lag_seconds`` histogram.  That lag is exactly the
    time the loop spent blocked in inline computation — the direct
    before/after metric for moving crypto onto the worker pool.
    """

    def __init__(self, registry: MetricRegistry, interval: float = 0.05):
        self._interval = interval
        self.histogram = registry.histogram(
            "repro_event_loop_lag_seconds",
            "Scheduling delay of a periodic heartbeat: how long past its "
            "deadline the event loop got around to running it.",
            buckets=LOOP_LAG_BUCKETS,
        )
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            deadline = loop.time() + self._interval
            await asyncio.sleep(self._interval)
            self.histogram.observe(max(0.0, loop.time() - deadline))


def crypto_cache_snapshot() -> dict:
    """Live counters of the process-wide crypto caches (one source of truth
    for ``stats()``, the registry collector, and the benchmark suites)."""
    from ..groups.precompute import precompute_stats
    from ..mathutils.lagrange import lagrange_cache_stats

    return {"fixed_base": precompute_stats(), "lagrange": lagrange_cache_stats()}


def register_crypto_cache_collector(
    registry: MetricRegistry | None = None,
) -> None:
    """Expose the PR-1 crypto-cache counters as registry gauges.

    Pull-style: the gauges are refreshed from the caches at collect time,
    so the caches themselves stay instrumentation-free. Idempotent per
    registry (keyed on the family's presence).
    """
    registry = registry if registry is not None else default_registry()
    if registry.get("repro_crypto_cache") is not None:
        return
    family = registry.gauge(
        "repro_crypto_cache",
        "Precompute-cache counters (fixed-base tables, Lagrange "
        "coefficients) mirrored from the live caches at scrape time.",
        ("cache", "stat"),
    )

    def collect() -> None:
        for cache_name, stats in crypto_cache_snapshot().items():
            for stat, value in stats.items():
                family.labels(cache_name, stat).set(value)

    registry.register_collector(collect)


#: Fixed-base table-lifecycle gauge names, in ``precompute_stats()`` order.
_FIXEDBASE_GAUGES = (
    ("repro_fixedbase_tables_built_total", "tables_built",
     "Fixed-base tables built from scratch in this process."),
    ("repro_fixedbase_tables_hits_total", "hits",
     "Fixed-base cache hits: exponentiations answered from a table."),
    ("repro_fixedbase_tables_promotions_total", "promotions",
     "Bases promoted to a table after recurring past the threshold."),
    ("repro_fixedbase_tables_loaded_total", "loads",
     "Fixed-base tables installed pre-built (disk persistence or "
     "worker warm-start) instead of being rebuilt."),
)


def register_fixedbase_collector(registry: MetricRegistry | None = None) -> None:
    """Expose the fixed-base table lifecycle as dedicated scrape series.

    The aggregate ``repro_crypto_cache`` family already mirrors these
    counters as labels; these flat series exist so dashboards and the
    restart smoke test can assert on them directly (a warm restart shows
    ``loaded`` rising while ``built`` stays flat).  Pull-style and
    idempotent per registry, like the cache collector.
    """
    registry = registry if registry is not None else default_registry()
    if registry.get(_FIXEDBASE_GAUGES[0][0]) is not None:
        return
    gauges = [
        (registry.gauge(name, help_text), stat)
        for name, stat, help_text in _FIXEDBASE_GAUGES
    ]

    def collect() -> None:
        from ..groups.precompute import precompute_stats

        stats = precompute_stats()
        for gauge, stat in gauges:
            gauge.set(stats[stat])

    registry.register_collector(collect)


def register_math_backend_collector(
    registry: MetricRegistry | None = None,
) -> None:
    """Expose the active math backend as an info-style metric.

    ``repro_math_backend_info{backend=...,selected_via=...} 1`` — the
    label pair identifies which primitive substrate this process computes
    with (docs/performance.md, "Math backends"); refreshed at collect
    time so a mid-run ``set_backend`` shows up on the next scrape.
    """
    registry = registry if registry is not None else default_registry()
    if registry.get("repro_math_backend_info") is not None:
        return
    family = registry.gauge(
        "repro_math_backend_info",
        "Active math backend (constant 1; identity is in the labels).",
        ("backend", "selected_via"),
    )

    seen: set[tuple[str, str]] = set()

    def collect() -> None:
        from ..mathutils.backends import backend_info

        info = backend_info()
        current = (info["name"], info["selected_via"])
        seen.add(current)
        for pair in seen:  # zero stale series after a mid-run switch
            family.labels(*pair).set(1 if pair == current else 0)

    registry.register_collector(collect)
