"""Lightweight per-request tracing.

A :class:`TraceContext` is created at the RPC entrypoint and propagated
implicitly (``contextvars``) into the protocol executor task, which records
one span per TRI round.  The executor also stamps every outgoing
:class:`~repro.core.messages.ProtocolMessage` with its trace id, so the
receiving node can attribute each hop to the peer trace that produced it —
a finished instance reports a per-round/per-hop timing breakdown without
any clock synchronisation between nodes (all times are offsets into the
local trace).
"""

from __future__ import annotations

import contextvars
import os
import time
from dataclasses import dataclass, field
from typing import Iterator

from contextlib import contextmanager

_current_trace: contextvars.ContextVar["TraceContext | None"] = contextvars.ContextVar(
    "repro_current_trace", default=None
)


def _new_trace_id() -> str:
    return os.urandom(8).hex()


@dataclass
class SpanRecord:
    """One named interval inside a trace (offsets are trace-relative)."""

    name: str
    start: float
    end: float
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceEvent:
    """A point-in-time annotation (e.g. one received protocol message)."""

    name: str
    at: float
    attributes: dict = field(default_factory=dict)


class TraceContext:
    """Collects spans and events for one request at one node."""

    def __init__(self, name: str, trace_id: str | None = None):
        self.name = name
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self._origin = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.events: list[TraceEvent] = []

    def elapsed(self) -> float:
        """Seconds since the trace began (the offset clock for spans)."""
        return time.perf_counter() - self._origin

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[SpanRecord]:
        start = self.elapsed()
        record = SpanRecord(name, start, start, dict(attributes))
        try:
            yield record
        finally:
            record.end = self.elapsed()
            self.spans.append(record)

    def add_span(self, name: str, start: float, end: float, **attributes) -> None:
        """Record an interval measured externally (trace-relative offsets)."""
        self.spans.append(SpanRecord(name, start, end, dict(attributes)))

    def event(self, name: str, **attributes) -> None:
        self.events.append(TraceEvent(name, self.elapsed(), dict(attributes)))

    def report(self) -> dict:
        """JSON-serialisable breakdown (the ``status`` RPC attaches this)."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration": self.elapsed(),
            "spans": [
                {
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    **({"attributes": s.attributes} if s.attributes else {}),
                }
                for s in self.spans
            ],
            "events": [
                {
                    "name": e.name,
                    "at": e.at,
                    **({"attributes": e.attributes} if e.attributes else {}),
                }
                for e in self.events
            ],
        }


def current_trace() -> TraceContext | None:
    """The trace active in this task (inherited by child tasks)."""
    return _current_trace.get()


@contextmanager
def start_trace(name: str, trace_id: str | None = None) -> Iterator[TraceContext]:
    """Activate a new trace for the duration of the ``with`` block.

    Tasks created inside the block inherit the trace through the task's
    context snapshot, which is how the RPC handler hands its trace to the
    protocol executor without threading it through every call.
    """
    trace = TraceContext(name, trace_id)
    token = _current_trace.set(trace)
    try:
        yield trace
    finally:
        _current_trace.reset(token)


def adopt_trace(name: str) -> TraceContext:
    """The ambient trace if one is active, else a fresh detached trace.

    Components that may run either inside a traced request (RPC-initiated)
    or standalone (a peer-initiated instance) call this instead of
    :func:`start_trace`.
    """
    trace = _current_trace.get()
    if trace is not None:
        return trace
    return TraceContext(name)
