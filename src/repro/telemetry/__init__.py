"""Telemetry: metrics registry, request tracing, Prometheus exposition.

The observability subsystem behind the ``metrics`` RPC method, the optional
HTTP scrape endpoint, and ``ThetacryptNode.stats()``.  See
``docs/observability.md`` for the metric catalog and trace field reference.
"""

from .exposition import (
    CONTENT_TYPE,
    MetricsHttpServer,
    parse_text,
    render_text,
)
from .instruments import (
    ChannelMetrics,
    CoreMetrics,
    CryptoPoolMetrics,
    EventLoopLagSampler,
    PrecomputeMetrics,
    RouterMetrics,
    RpcMetrics,
    StorageMetrics,
    client_redirects_counter,
    crypto_cache_snapshot,
    register_crypto_cache_collector,
    register_fixedbase_collector,
    register_math_backend_collector,
)
from .registry import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricRegistry,
    Sample,
    TelemetryError,
    counter,
    default_registry,
    gauge,
    histogram,
    summarize,
)
from .tracing import (
    SpanRecord,
    TraceContext,
    TraceEvent,
    adopt_trace,
    current_trace,
    start_trace,
)

__all__ = [
    "CONTENT_TYPE",
    "ChannelMetrics",
    "CoreMetrics",
    "CryptoPoolMetrics",
    "EventLoopLagSampler",
    "PrecomputeMetrics",
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricRegistry",
    "MetricsHttpServer",
    "RouterMetrics",
    "RpcMetrics",
    "Sample",
    "StorageMetrics",
    "SpanRecord",
    "TelemetryError",
    "TraceContext",
    "TraceEvent",
    "adopt_trace",
    "client_redirects_counter",
    "counter",
    "crypto_cache_snapshot",
    "current_trace",
    "default_registry",
    "gauge",
    "histogram",
    "parse_text",
    "register_crypto_cache_collector",
    "register_fixedbase_collector",
    "register_math_backend_collector",
    "render_text",
    "start_trace",
    "summarize",
]
