"""Canonical binary encoding helpers shared across the library.

Thetacrypt exchanges protocol messages between nodes and returns
cryptographic objects over RPC.  Both need a *canonical* byte encoding:
Fiat-Shamir challenges hash serialized transcripts, so any ambiguity in the
encoding would be a security bug.  The helpers here implement a tiny,
deterministic TLV-free format:

* integers are encoded big-endian with an explicit 4-byte length prefix,
* byte strings carry a 4-byte length prefix,
* sequences concatenate the encodings of their items after a 4-byte count.

The format is intentionally simple rather than self-describing; each decoder
knows the exact shape it expects, mirroring how protobuf messages are used in
the original Rust codebase.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .errors import SerializationError

_LEN_BYTES = 4
_MAX_LEN = 2**32 - 1


def encode_bytes(data: bytes) -> bytes:
    """Encode a byte string with a 4-byte big-endian length prefix."""
    if len(data) > _MAX_LEN:
        raise SerializationError("byte string too long to encode")
    return len(data).to_bytes(_LEN_BYTES, "big") + data


def encode_int(value: int) -> bytes:
    """Encode a non-negative integer canonically (minimal big-endian body)."""
    if value < 0:
        raise SerializationError("cannot encode negative integer")
    body = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return encode_bytes(body)


def encode_str(value: str) -> bytes:
    """Encode a unicode string as length-prefixed UTF-8."""
    return encode_bytes(value.encode("utf-8"))


def encode_seq(items: Iterable[bytes]) -> bytes:
    """Encode a sequence of already-encoded chunks with a count prefix."""
    chunks = list(items)
    if len(chunks) > _MAX_LEN:
        raise SerializationError("sequence too long to encode")
    return len(chunks).to_bytes(_LEN_BYTES, "big") + b"".join(chunks)


class Reader:
    """Sequential decoder over a byte buffer.

    Raises :class:`SerializationError` on truncation and requires the caller
    to consume the buffer fully via :meth:`finish`, so trailing garbage is
    rejected rather than silently ignored.
    """

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise SerializationError(
                f"truncated buffer: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_bytes(self) -> bytes:
        length = int.from_bytes(self._take(_LEN_BYTES), "big")
        return self._take(length)

    def read_int(self) -> int:
        body = self.read_bytes()
        if len(body) > 1 and body[0] == 0:
            raise SerializationError("non-minimal integer encoding")
        return int.from_bytes(body, "big")

    def read_str(self) -> str:
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 string") from exc

    def read_count(self) -> int:
        return int.from_bytes(self._take(_LEN_BYTES), "big")

    def iter_seq(self) -> Iterator[None]:
        """Yield once per declared sequence item; caller reads each body."""
        count = self.read_count()
        for _ in range(count):
            yield None

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def finish(self) -> None:
        if self.remaining:
            raise SerializationError(f"{self.remaining} trailing bytes after decode")


def int_to_fixed(value: int, size: int) -> bytes:
    """Encode an integer into exactly ``size`` big-endian bytes."""
    try:
        return value.to_bytes(size, "big")
    except OverflowError as exc:
        raise SerializationError(f"integer does not fit in {size} bytes") from exc


def fixed_to_int(data: bytes, size: int) -> int:
    """Decode an integer from exactly ``size`` big-endian bytes."""
    if len(data) != size:
        raise SerializationError(f"expected {size} bytes, got {len(data)}")
    return int.from_bytes(data, "big")


def encode_fields(*fields: bytes) -> bytes:
    """Concatenate pre-encoded fields (readability helper for encoders)."""
    return b"".join(fields)


def hexlify(data: bytes) -> str:
    """Hex encoding used by the JSON RPC layer."""
    return data.hex()


def unhexlify(text: str) -> bytes:
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise SerializationError("invalid hex string") from exc
