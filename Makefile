# Convenience targets for the Thetacrypt reproduction.

PYTHON ?= python3

.PHONY: install test test-fast bench bench-fast bench-smoke check check-gmpy2 metrics-smoke chaos-smoke recovery-smoke offload-smoke federation-smoke precompute-smoke examples fixtures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) tools/install_editable.py

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow and not integration"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	REPRO_FAST=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Tier-1 gate: full test suite plus a microbenchmark smoke run.  Sets
# PYTHONPATH so it works without `make install`.
check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/
	PYTHONPATH=src REPRO_FAST=1 $(PYTHON) -m pytest \
		benchmarks/bench_micro_primitives.py --benchmark-disable -q

# Second test leg for hosts with gmpy2 installed: the cross-backend
# bit-identity matrix gains its gmpy2 column, the whole crypto suite
# runs forced onto the gmpy2 backend, and the backend benchmark arms its
# >=3x gmpy2 gate (docs/performance.md, "Math backends").  Fails fast if
# gmpy2 is not importable — this target is the opt-in, not the probe.
check-gmpy2:
	PYTHONPATH=src $(PYTHON) -c "import gmpy2; print('gmpy2', gmpy2.version())"
	PYTHONPATH=src REPRO_MATH_BACKEND=gmpy2 $(PYTHON) -m pytest \
		tests/test_math_backends.py tests/test_mathutils.py \
		tests/test_table_persistence.py tests/test_precompute.py -q
	PYTHONPATH=src REPRO_FAST=1 $(PYTHON) -m pytest \
		benchmarks/bench_backends.py --benchmark-only -s

# Telemetry gate: boot a 4-node cluster, run one request per scheme API,
# and assert the Prometheus scrape output parses (docs/observability.md).
metrics-smoke:
	PYTHONPATH=src $(PYTHON) tools/metrics_smoke.py

# Robustness gate: a seeded 4-node cluster with one crashed and one
# byzantine node must still finalize SG02 decryption and BLS04 signing,
# with the injected faults visible in the Prometheus scrape and the same
# seed reproducing the same fault schedule (docs/robustness.md).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) tools/chaos_smoke.py

# Durability gate: a 4-node daemon cluster with per-node data_dir; node 4
# is SIGKILLed mid-protocol and restarted from disk, which must recover
# its keys, serve cached results, and abort the in-flight instance with
# the structured crash_recovery reason (docs/robustness.md).
recovery-smoke:
	PYTHONPATH=src $(PYTHON) tools/recovery_smoke.py

# Offload gate: a 4-node daemon cluster with --crypto-workers 2 under
# the adaptive policy.  On multi-core hosts SG02 decryption and BLS04
# signing must run through the worker pools (visible in node_stats and
# the Prometheus scrape); on a 1-core host the policy must instead keep
# every op inline (choice="inline" decisions scraped, zero pool tasks).
# Either way, no orphaned worker processes after SIGTERM
# (docs/performance.md).
offload-smoke:
	PYTHONPATH=src $(PYTHON) tools/offload_smoke.py

# Federation gate: deal disjoint keys across 2 two-node groups from a
# topology file, start the 4 node daemons plus a stateless router
# daemon, and drive SG02 decryption (group alpha) and BLS04 signing
# (group beta) through the router's single endpoint.  Per-shard router
# telemetry must count both shards, and SIGKILLing the router
# mid-workload then restarting it must lose no accepted request
# (docs/federation.md).  No orphaned processes after SIGTERM.
federation-smoke:
	PYTHONPATH=src $(PYTHON) tools/federation_smoke.py

# Precompute gate: 2 daemons with --precompute-depth 8 and journal-backed
# pools.  Announced ciphertexts must be staged on every node and served
# from the pool (repro_precompute_served_total{source="pool"} scraped),
# an unannounced decrypt must fall back inline, and both daemons must
# exit cleanly on SIGTERM — the refill loop cannot pin shutdown
# (docs/performance.md, "Precompute pipeline").
precompute-smoke:
	PYTHONPATH=src $(PYTHON) tools/precompute_smoke.py

# Workers-on/off ablation on the real asyncio service (pooled run under
# the adaptive policy), persisted machine-readably to BENCH_offload.json
# with a bounded history of prior runs (docs/performance.md).  Fails on
# >=4-core hosts unless offload wins >=1.5x, and on 1-core hosts unless
# the policy keeps throughput within noise of inline (>=0.95x).  Set
# REPRO_FAST=1 for a 4-node shape on small runners.
bench-smoke:
	PYTHONPATH=src $(PYTHON) tools/bench_smoke.py

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script || exit 1; done

fixtures:
	$(PYTHON) tools/gen_rsa_fixtures.py 512 1024 2048 4096

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
