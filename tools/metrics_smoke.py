#!/usr/bin/env python3
"""Telemetry smoke gate: boot a 4-node cluster, exercise every endpoint
family once, and assert the scrape output parses (``make metrics-smoke``).

Runs one request per Protocol API method (sign, decrypt, flip_coin) and
per Scheme API method (encrypt, verify_signature, list_keys), then checks:

* the ``metrics`` RPC and the plain-HTTP ``GET /metrics`` endpoint return
  the same parseable Prometheus text document,
* the required metric families are present with non-zero counts,
* the finished instances report per-round trace breakdowns.

Exit status 0 on success; prints the offending assertion otherwise.
"""

from __future__ import annotations

import asyncio
import sys
from dataclasses import replace
from pathlib import Path

if __package__ is None and __name__ == "__main__":  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service.client import ThetacryptClient
from repro.service.config import make_local_configs
from repro.service.node import ThetacryptNode, derive_instance_id
from repro.telemetry import parse_text

PARTIES, THRESHOLD = 4, 1

REQUIRED_FAMILIES = [
    "repro_rpc_requests_total",
    "repro_rpc_latency_seconds_count",
    "repro_tri_round_seconds_count",
    "repro_tri_messages_total",
    "repro_instances_total",
    "repro_instance_seconds_count",
    "repro_network_messages_total",
    "repro_network_bytes_total",
    "repro_network_send_seconds_count",
    "repro_network_dispatch_total",
    "repro_network_delivered_total",
    "repro_crypto_cache",
]


def metric_sum(parsed, name: str, **labels) -> float:
    wanted = set(labels.items())
    values = [
        value
        for (sample_name, sample_labels), value in parsed.items()
        if sample_name == name and wanted <= set(sample_labels)
    ]
    if not values:
        raise AssertionError(f"scrape is missing {name} with labels {labels}")
    return sum(values)


async def scrape_http(host: str, port: int) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("latin-1")
    assert "200" in status, f"HTTP scrape failed: {status}"
    return body.decode()


async def main() -> None:
    print(f"dealing keys for a ({THRESHOLD}, {PARTIES}) network ...")
    key_sets = {
        "sig-bls04": generate_keys("bls04", THRESHOLD, PARTIES),
        "cipher-sg02": generate_keys("sg02", THRESHOLD, PARTIES),
        "coin-cks05": generate_keys("cks05", THRESHOLD, PARTIES),
    }

    configs = make_local_configs(
        PARTIES, THRESHOLD, transport="local", rpc_base_port=0
    )
    hub = LocalHub(latency=lambda a, b: 0.0005)
    nodes: list[ThetacryptNode] = []
    for config in configs:
        node = ThetacryptNode(
            replace(config, metrics_port=0),  # ephemeral HTTP scrape port
            transport=hub.endpoint(config.node_id),
        )
        for key_id, keys in key_sets.items():
            node.install_key(
                key_id, keys.scheme, keys.public_key,
                keys.share_for(config.node_id),
            )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})

    try:
        print("running one request per endpoint family ...")
        # Protocol API.
        signature = await client.sign("sig-bls04", b"smoke")
        ciphertext = await client.encrypt("cipher-sg02", b"smoke secret", b"l")
        plaintext = await client.decrypt("cipher-sg02", ciphertext, b"l")
        assert plaintext == b"smoke secret"
        coin = await client.flip_coin("coin-cks05", b"smoke-round")
        assert len(coin) == 32
        # Scheme API.
        assert await client.verify_signature("sig-bls04", b"smoke", signature)
        keys_listed = await client.call(1, "list_keys", {})
        assert len(keys_listed["keys"]) == 3

        print("scraping node 1 over RPC and HTTP ...")
        rpc_text = await client.metrics(1)
        host, port = nodes[0].metrics_address
        http_text = await scrape_http(host, port)

        for label, text in (("rpc", rpc_text), ("http", http_text)):
            parsed = parse_text(text)
            assert parsed, f"{label} scrape produced no samples"
            for family in REQUIRED_FAMILIES:
                assert any(
                    name == family for name, _ in parsed
                ), f"{label} scrape is missing family {family}"
            for method in ("sign", "decrypt", "flip_coin"):
                count = metric_sum(
                    parsed, "repro_rpc_latency_seconds_count", method=method
                )
                assert count >= 1, f"{label}: no latency samples for {method}"
            for scheme in ("bls04", "sg02", "cks05"):
                assert metric_sum(
                    parsed, "repro_tri_round_seconds_count", scheme=scheme
                ) >= 1
            assert metric_sum(
                parsed, "repro_network_bytes_total", node="1", channel="local"
            ) > 0
            print(f"  {label}: {len(parsed)} samples, all required families present")

        instance_id = derive_instance_id("sign", "sig-bls04", b"smoke", b"")
        status = await client.status(instance_id, 1)
        spans = [s["name"] for s in status["trace"]["spans"]]
        assert any(name.startswith("round-") for name in spans), spans
        print(f"  trace: instance {instance_id} spans {spans}")

        stats = await client.node_stats(1)
        summary = stats["latency"]
        assert summary["count"] >= 3
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        print(
            "  stats: count=%d p50=%.1fms p95=%.1fms p99=%.1fms"
            % (
                summary["count"],
                summary["p50"] * 1e3,
                summary["p95"] * 1e3,
                summary["p99"] * 1e3,
            )
        )
        print("metrics smoke OK")
    finally:
        await client.close()
        for node in nodes:
            await node.stop()


if __name__ == "__main__":
    asyncio.run(main())
