#!/usr/bin/env python3
"""Crash-recovery smoke gate (``make recovery-smoke``).

The durability contract of docs/robustness.md, exercised end to end on
real daemon processes:

* deal keys for a 4-node (t = 1) TCP cluster with per-node ``data_dir``;
* finalize one BLS04 signature cluster-wide, then park a second request
  in flight on node 4 alone (its peers never see it, so it cannot reach
  quorum);
* SIGKILL node 4 — no drain, no journal close: the pending instance dies
  with the process;
* restart node 4 from its ``data_dir`` and assert that recovery
  - reloaded the key shares from the durable keystore,
  - answers a duplicate of the finalized request from the durable result
    cache (byte-identical signature, no protocol re-run),
  - reports the in-flight-at-crash instance as aborted with the
    structured ``crash_recovery`` reason (status RPC + node stats +
    ``repro_recovery_*`` metrics), and
  - participates in fresh protocol runs (cluster liveness).

Exit status 0 on success; prints the offending assertion otherwise.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if __package__ is None and __name__ == "__main__":  # pragma: no cover
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import RpcError  # noqa: E402
from repro.serialization import hexlify  # noqa: E402
from repro.service.client import ThetacryptClient  # noqa: E402
from repro.service.node import derive_instance_id  # noqa: E402
from repro.telemetry import parse_text  # noqa: E402

PARTIES, THRESHOLD = 4, 1
BASE_PORT, RPC_BASE_PORT = 21700, 21800

#: Environment for child processes: the daemons import ``repro`` from src.
CHILD_ENV = dict(
    os.environ,
    PYTHONPATH=str(REPO / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)


def spawn_daemon(out: Path, node_id: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.daemon",
            "--config", str(out / f"node{node_id}" / "config.json"),
            "--keystore", str(out / f"node{node_id}" / "keystore.json"),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=CHILD_ENV,
    )


async def wait_for_ping(client: ThetacryptClient, node_id: int) -> None:
    for _ in range(150):
        try:
            await client.call(node_id, "ping", {})
            return
        except (OSError, RpcError):
            await asyncio.sleep(0.2)
    raise AssertionError(f"daemon {node_id} never answered ping")


async def wait_for_status(
    client: ThetacryptClient, instance_id: str, node_id: int, wanted: set[str]
) -> dict:
    for _ in range(150):
        try:
            status = await client.status(instance_id, node_id=node_id)
            if status["status"] in wanted:
                return status
        except RpcError:
            pass  # instance not created on that node yet
        await asyncio.sleep(0.1)
    raise AssertionError(
        f"instance {instance_id} never reached {wanted} on node {node_id}"
    )


async def drive(out: Path, daemons: list[subprocess.Popen]) -> None:
    addresses = {i: ("127.0.0.1", RPC_BASE_PORT + i) for i in range(1, PARTIES + 1)}
    client = ThetacryptClient(addresses)
    try:
        for node_id in range(1, PARTIES + 1):
            await wait_for_ping(client, node_id)
        print(f"  {PARTIES} daemons up (rpc ports {RPC_BASE_PORT + 1}..)")

        # One fully finalized operation, cached durably on node 4.
        done_data = b"finalized before the crash"
        signature = await client.sign("bls04", done_data)
        done_id = derive_instance_id("sign", "bls04", done_data, b"")
        await wait_for_status(client, done_id, 4, {"finished"})
        print("  pre-crash signature finalized on node 4")

        # One request in flight on node 4 only: quorum is unreachable, so
        # it is still pending when the process is killed.
        pending_data = b"in flight at the crash"
        pending_id = derive_instance_id("sign", "bls04", pending_data, b"")
        submit = asyncio.ensure_future(
            client.call(
                4, "sign", {"key_id": "bls04", "data": hexlify(pending_data)}
            )
        )
        await wait_for_status(client, pending_id, 4, {"created", "running"})

        # kill -9 mid-protocol.
        daemons[3].kill()
        daemons[3].wait(timeout=10)
        submit.cancel()
        await asyncio.gather(submit, return_exceptions=True)
        print("  node 4 SIGKILLed with one instance in flight")

        # Restart from the same data_dir.
        daemons[3] = spawn_daemon(out, 4)
        await wait_for_ping(client, 4)

        stats = await client.node_stats(4)
        assert stats["keys"] == 2, f"keys not recovered: {stats['keys']}"
        recovery = stats["recovery"]
        assert recovery.get("keys") == 2, f"bad recovery stats: {recovery}"
        assert recovery.get("results", 0) >= 1, f"no cached results: {recovery}"
        assert recovery.get("aborted", 0) >= 1, f"no recovered aborts: {recovery}"
        assert stats["aborts"].get("crash_recovery", 0) >= 1, stats["aborts"]
        print(f"  recovery stats: {recovery}")

        # Duplicate of the finalized request: answered from the durable
        # result cache, byte-identical.
        replayed = await client.call(
            4, "sign", {"key_id": "bls04", "data": hexlify(done_data)}
        )
        assert replayed["result"] == hexlify(signature), (
            "cached result differs from the pre-crash signature"
        )
        print("  duplicate request served from the durable result cache")

        # The in-flight-at-crash instance is a structured abort.
        status = await client.status(pending_id, node_id=4)
        assert status["status"] == "failed", status
        assert status["abort_reason"] == "crash_recovery", status
        print("  in-flight instance reported as crash_recovery abort")

        # Recovery metrics in the Prometheus scrape.
        parsed = parse_text(await client.metrics(4))
        recovered = {
            dict(labels).get("outcome"): value
            for (name, labels), value in parsed.items()
            if name == "repro_recovery_instances_total"
        }
        runs = sum(
            value
            for (name, _), value in parsed.items()
            if name == "repro_recovery_runs_total"
        )
        assert runs >= 1, "repro_recovery_runs_total missing from scrape"
        assert recovered.get("aborted", 0) >= 1, recovered
        print(f"  scrape: recovery runs={runs:.0f}, instances={recovered}")

        # Liveness: the recovered node takes part in new protocol runs.
        after = b"signed after recovery"
        sig2 = await client.sign("bls04", after)
        assert await client.verify_signature("bls04", after, sig2)
        coin = await client.flip_coin("cks05", b"post-recovery coin")
        assert len(coin) == 32
        print("  cluster liveness after recovery confirmed")
    finally:
        await client.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="recovery-smoke-") as tmp:
        out = Path(tmp)
        print(f"dealing keys for a ({THRESHOLD}, {PARTIES}) network ...")
        deal = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "deal_keys.py"),
                "--parties", str(PARTIES),
                "--threshold", str(THRESHOLD),
                "--schemes", "bls04,cks05",
                "--base-port", str(BASE_PORT),
                "--rpc-base-port", str(RPC_BASE_PORT),
                "--out", str(out),
                "--data-dir",
            ],
            env=CHILD_ENV,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert deal.returncode == 0, deal.stderr
        daemons = [spawn_daemon(out, i) for i in range(1, PARTIES + 1)]
        try:
            asyncio.run(drive(out, daemons))
        finally:
            for daemon in daemons:
                if daemon.poll() is None:
                    daemon.terminate()
            for daemon in daemons:
                try:
                    daemon.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    daemon.kill()
    print("recovery smoke OK")


if __name__ == "__main__":
    main()
