#!/usr/bin/env python3
"""Worker-pool offload smoke gate (``make offload-smoke``).

The docs/performance.md contract, exercised end to end on real daemon
processes:

* deal keys for a 4-node (t = 1) TCP cluster and start each daemon with
  ``--crypto-workers 2`` — every node owns a 2-process crypto pool under
  the default **adaptive** offload policy;
* finalize one SG02 encrypt→decrypt round trip and one BLS04 signature
  cluster-wide (both schemes offload share creation *and* batched share
  verification);
* on a multi-core host (``cpu_count >= 2``), assert via ``node_stats``
  that every node's pool ran tasks without inline fallbacks, and via the
  Prometheus scrape that ``repro_crypto_pool_tasks_total{outcome="ok"}``
  counted them; on a 1-core host, assert the opposite — the policy kept
  every op inline (``repro_crypto_pool_policy_decisions_total`` scraped
  with ``choice="inline"``, zero pool tasks, no workers spawned);
* either way, the ``repro_event_loop_lag_seconds`` heartbeat must be live;
* SIGTERM the daemons and assert none of the previously reported worker
  pids survives teardown — a daemon must not orphan its pool processes.

Exit status 0 on success; prints the offending assertion otherwise.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if __package__ is None and __name__ == "__main__":  # pragma: no cover
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import RpcError  # noqa: E402
from repro.service.client import ThetacryptClient  # noqa: E402
from repro.telemetry import parse_text  # noqa: E402

PARTIES, THRESHOLD = 4, 1
# Distinct from metrics-smoke/chaos-smoke/recovery-smoke port ranges so the
# gates can run back to back (TIME_WAIT) or even concurrently.
BASE_PORT, RPC_BASE_PORT = 22100, 22200
CRYPTO_WORKERS = 2

#: Environment for child processes: the daemons import ``repro`` from src.
CHILD_ENV = dict(
    os.environ,
    PYTHONPATH=str(REPO / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)


def spawn_daemon(out: Path, node_id: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.daemon",
            "--config", str(out / f"node{node_id}" / "config.json"),
            "--keystore", str(out / f"node{node_id}" / "keystore.json"),
            "--crypto-workers", str(CRYPTO_WORKERS),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=CHILD_ENV,
    )


async def wait_for_ping(client: ThetacryptClient, node_id: int) -> None:
    for _ in range(150):
        try:
            await client.call(node_id, "ping", {})
            return
        except (OSError, RpcError):
            await asyncio.sleep(0.2)
    raise AssertionError(f"daemon {node_id} never answered ping")


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, owned elsewhere
        return True
    return True


async def drive(client: ThetacryptClient) -> list[int]:
    """Run pooled requests, check stats + scrape; return all worker pids."""
    for node_id in range(1, PARTIES + 1):
        await wait_for_ping(client, node_id)
    print(f"  {PARTIES} daemons up with --crypto-workers {CRYPTO_WORKERS}")

    # SG02: threshold decryption (share creation + batched verification in
    # the pool on every node).
    plaintext = b"offload smoke plaintext"
    ciphertext = await client.encrypt("sg02", plaintext, b"smoke")
    decrypted = await client.decrypt("sg02", ciphertext, b"smoke")
    assert decrypted == plaintext, "sg02 round trip failed"
    print("  sg02 encrypt -> threshold decrypt OK")

    # BLS04: threshold signature (pairing work in the pool).
    message = b"offload smoke message"
    signature = await client.sign("bls04", message)
    assert await client.verify_signature("bls04", message, signature)
    print("  bls04 threshold signature OK")

    cores = os.cpu_count() or 1
    worker_pids: list[int] = []
    for node_id in range(1, PARTIES + 1):
        stats = await client.node_stats(node_id)
        pool = stats.get("crypto_pool", {})
        assert pool.get("enabled"), f"node {node_id}: pool not enabled: {pool}"
        assert pool.get("fallbacks", 0) == 0, (
            f"node {node_id}: pooled crypto fell back inline: {pool}"
        )
        pids = pool.get("worker_pids", [])
        parsed = parse_text(await client.metrics(node_id))
        pool_ok = sum(
            value
            for (name, labels), value in parsed.items()
            if name == "repro_crypto_pool_tasks_total"
            and dict(labels).get("outcome") == "ok"
        )
        if cores >= 2:
            # Multi-core host: the adaptive policy routes through the pool.
            assert pool.get("tasks_ok", 0) >= 1, (
                f"node {node_id}: pool ran no tasks: {pool}"
            )
            assert len(pids) >= 1, f"node {node_id}: no worker pids: {pool}"
            assert pool_ok >= 1, (
                f"node {node_id}: repro_crypto_pool_tasks_total ok={pool_ok}"
            )
        else:
            # 1-core host: the adaptive policy must keep every op inline —
            # no pool tasks, no worker processes, and the decision counter
            # scraped with choice="inline".
            assert pool.get("tasks_ok", 0) == 0, (
                f"node {node_id}: policy offloaded on a 1-core host: {pool}"
            )
            assert not pids, (
                f"node {node_id}: pool spawned workers it never used: {pids}"
            )
            inline_decisions = sum(
                value
                for (name, labels), value in parsed.items()
                if name == "repro_crypto_pool_policy_decisions_total"
                and dict(labels).get("choice") == "inline"
            )
            assert inline_decisions >= 1, (
                f"node {node_id}: no inline policy decisions scraped"
            )
        worker_pids.extend(pids)
        lag_samples = sum(
            value
            for (name, _), value in parsed.items()
            if name == "repro_event_loop_lag_seconds_count"
        )
        assert lag_samples >= 1, f"node {node_id}: loop-lag heartbeat silent"
    print(
        f"  pool stats + scrape OK on all nodes "
        f"({cores} cores, {len(worker_pids)} workers)"
    )
    for pid in worker_pids:
        assert pid_alive(pid), f"reported worker pid {pid} not alive"
    return worker_pids


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="offload-smoke-") as tmp:
        out = Path(tmp)
        print(f"dealing keys for a ({THRESHOLD}, {PARTIES}) network ...")
        deal = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "deal_keys.py"),
                "--parties", str(PARTIES),
                "--threshold", str(THRESHOLD),
                "--schemes", "sg02,bls04",
                "--base-port", str(BASE_PORT),
                "--rpc-base-port", str(RPC_BASE_PORT),
                "--out", str(out),
            ],
            env=CHILD_ENV,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert deal.returncode == 0, deal.stderr
        daemons = [spawn_daemon(out, i) for i in range(1, PARTIES + 1)]
        worker_pids: list[int] = []
        try:

            async def run() -> list[int]:
                addresses = {
                    i: ("127.0.0.1", RPC_BASE_PORT + i)
                    for i in range(1, PARTIES + 1)
                }
                client = ThetacryptClient(addresses)
                try:
                    return await drive(client)
                finally:
                    await client.close()

            worker_pids = asyncio.run(run())
        finally:
            for daemon in daemons:
                if daemon.poll() is None:
                    daemon.terminate()
            for daemon in daemons:
                try:
                    daemon.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    daemon.kill()

        # The orphan check: a SIGTERM'd daemon must take its pool down
        # with it.  Workers exit asynchronously after the parent joins
        # them, so poll briefly before declaring leakage.
        deadline = time.monotonic() + 10.0
        leaked = [pid for pid in worker_pids if pid_alive(pid)]
        while leaked and time.monotonic() < deadline:
            time.sleep(0.2)
            leaked = [pid for pid in leaked if pid_alive(pid)]
        assert not leaked, f"worker processes survived daemon shutdown: {leaked}"
        print(f"  all {len(worker_pids)} worker processes gone after SIGTERM")
    print("offload smoke OK")


if __name__ == "__main__":
    main()
