#!/usr/bin/env python3
"""Trusted-dealer CLI: generate configs and keystores for a Θ-network.

Single-group mode (the original deployment shape)::

    python3 tools/deal_keys.py --parties 4 --threshold 1 \
        --schemes bls04,sg02,cks05 --out deployment/

writes, under ``deployment/``:

* ``node<i>/config.json``   — NodeConfig for each node (TCP transport);
* ``node<i>/keystore.json`` — that node's private key shares;
* ``public_keys.json``     — key id → public key + owner, for clients.

Federation mode deals one *sharded* deployment from a topology
descriptor (see ``docs/federation.md``)::

    python3 tools/deal_keys.py --topology deployment/topology.json \
        --keys tenant-a/sg02,tenant-a/bls04,tenant-b/sg02 --out deployment/

Each key id's scheme is the segment after its last ``/`` (bare scheme
names work too); every key is dealt **only** to the group that owns it
under the topology's ring/assignments, so groups hold disjoint key sets.
Per group ``<gid>``, configs and keystores land under
``out/group-<gid>/node<i>/`` with ``group_id``/``topology`` embedded, so
nodes answer requests for foreign keys with a structured ``wrong_group``
redirect.  Start nodes with ``python3 -m repro.service.daemon`` and any
number of routers with ``python3 -m repro.router.daemon``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import replace

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.router.topology import Topology  # noqa: E402
from repro.schemes import generate_keys  # noqa: E402
from repro.schemes.keystore import export_public_key, node_keystore  # noqa: E402
from repro.serialization import hexlify  # noqa: E402
from repro.service.config import make_local_configs  # noqa: E402


def scheme_of(key_id: str) -> str:
    """``tenant/app/bls04`` → ``bls04``; bare scheme names pass through."""
    return key_id.rsplit("/", 1)[-1]


def write_group(out, configs, material, data_dir):
    """Write one group's per-node config + keystore files."""
    if data_dir:
        configs = [
            replace(c, data_dir=str(out / f"node{c.node_id}" / "data"))
            for c in configs
        ]
    for config in configs:
        node_dir = out / f"node{config.node_id}"
        node_dir.mkdir(parents=True, exist_ok=True)
        (node_dir / "config.json").write_text(config.to_json())
        (node_dir / "keystore.json").write_text(
            node_keystore(material, config.node_id)
        )
    return configs


def deal_single(args, key_ids) -> None:
    material = {
        key_id: generate_keys(
            scheme_of(key_id), args.threshold, args.parties, rsa_bits=args.rsa_bits
        )
        for key_id in key_ids
    }
    configs = make_local_configs(
        args.parties,
        args.threshold,
        base_port=args.base_port,
        rpc_base_port=args.rpc_base_port,
        host=args.host,
    )
    out = pathlib.Path(args.out)
    configs = write_group(out, configs, material, args.data_dir)
    public = {
        key_id: {
            "scheme": km.scheme,
            "public_key": hexlify(export_public_key(km.scheme, km.public_key)),
        }
        for key_id, km in material.items()
    }
    (out / "public_keys.json").write_text(json.dumps(public, indent=2))
    print(
        f"dealt {len(key_ids)} keys for a {args.threshold + 1}-of-{args.parties} "
        f"network under {out}/"
    )
    print("start nodes with:")
    for config in configs:
        print(
            f"  python3 -m repro.service.daemon "
            f"--config {out}/node{config.node_id}/config.json "
            f"--keystore {out}/node{config.node_id}/keystore.json"
        )


def deal_federation(args, key_ids) -> None:
    topology = Topology.from_json(pathlib.Path(args.topology).read_text())
    owned = topology.partition_keys(key_ids)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    public: dict[str, dict] = {}
    commands: list[str] = []
    for spec in topology.groups:
        group_keys = owned[spec.group_id]
        material = {
            key_id: generate_keys(
                scheme_of(key_id),
                spec.threshold,
                spec.parties,
                rsa_bits=args.rsa_bits,
            )
            for key_id in group_keys
        }
        configs = make_local_configs(
            spec.parties,
            spec.threshold,
            base_port=spec.base_port or args.base_port,
            rpc_base_port=spec.rpc_base_port or args.rpc_base_port,
            host=spec.host,
            group_id=spec.group_id,
            topology=topology,
        )
        group_dir = out / f"group-{spec.group_id}"
        configs = write_group(group_dir, configs, material, args.data_dir)
        for key_id, km in material.items():
            public[key_id] = {
                "scheme": km.scheme,
                "group": spec.group_id,
                "public_key": hexlify(
                    export_public_key(km.scheme, km.public_key)
                ),
            }
        for config in configs:
            commands.append(
                f"  python3 -m repro.service.daemon "
                f"--config {group_dir}/node{config.node_id}/config.json "
                f"--keystore {group_dir}/node{config.node_id}/keystore.json"
            )
        print(
            f"group {spec.group_id}: dealt {len(group_keys)} keys "
            f"({', '.join(group_keys) or 'none'}) "
            f"as {spec.threshold + 1}-of-{spec.parties}"
        )
    (out / "public_keys.json").write_text(json.dumps(public, indent=2))
    # The same document the nodes embed, for routers and clients to load.
    (out / "topology.json").write_text(topology.to_json())
    print("start nodes with:")
    for command in commands:
        print(command)
    print("start a router with:")
    print(f"  python3 -m repro.router.daemon --topology {out}/topology.json")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parties", type=int, default=4)
    parser.add_argument("--threshold", type=int, default=1)
    parser.add_argument(
        "--schemes", default="bls04,sg02,cks05",
        help="comma-separated scheme list (key id = scheme name)",
    )
    parser.add_argument(
        "--keys", default="",
        help="comma-separated key ids, e.g. tenant-a/sg02 (scheme = last "
        "path segment); overrides --schemes",
    )
    parser.add_argument(
        "--topology", default="",
        help="federation Topology JSON: deal keys disjointly across its "
        "groups instead of one flat network",
    )
    parser.add_argument("--rsa-bits", type=int, default=2048)
    parser.add_argument("--base-port", type=int, default=17000)
    parser.add_argument("--rpc-base-port", type=int, default=18000)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--out", default="deployment")
    parser.add_argument(
        "--data-dir",
        action="store_true",
        help="give every node a durable data_dir (out/.../node<i>/data) so "
        "it persists keys/results and runs crash recovery on restart "
        "(docs/robustness.md)",
    )
    args = parser.parse_args()

    raw = args.keys if args.keys else args.schemes
    key_ids = [k.strip() for k in raw.split(",") if k.strip()]
    if not key_ids:
        raise ConfigurationError("no keys requested")
    if args.topology:
        deal_federation(args, key_ids)
    else:
        deal_single(args, key_ids)


if __name__ == "__main__":
    main()
