#!/usr/bin/env python3
"""Trusted-dealer CLI: generate configs and keystores for a Θ-network.

    python3 tools/deal_keys.py --parties 4 --threshold 1 \
        --schemes bls04,sg02,cks05 --out deployment/

Writes, under ``deployment/``:

* ``node<i>/config.json``   — NodeConfig for each node (TCP transport);
* ``node<i>/keystore.json`` — that node's private key shares;
* ``public_keys.json``     — scheme → public key, for clients.

Then start each node with ``python3 -m repro.service.daemon``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.schemes import generate_keys  # noqa: E402
from repro.schemes.keystore import export_public_key, node_keystore  # noqa: E402
from repro.serialization import hexlify  # noqa: E402
from repro.service.config import make_local_configs  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parties", type=int, default=4)
    parser.add_argument("--threshold", type=int, default=1)
    parser.add_argument(
        "--schemes", default="bls04,sg02,cks05",
        help="comma-separated scheme list (key id = scheme name)",
    )
    parser.add_argument("--rsa-bits", type=int, default=2048)
    parser.add_argument("--base-port", type=int, default=17000)
    parser.add_argument("--rpc-base-port", type=int, default=18000)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--out", default="deployment")
    parser.add_argument(
        "--data-dir",
        action="store_true",
        help="give every node a durable data_dir (out/node<i>/data) so it "
        "persists keys/results and runs crash recovery on restart "
        "(docs/robustness.md)",
    )
    args = parser.parse_args()

    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    material = {
        scheme: generate_keys(
            scheme, args.threshold, args.parties, rsa_bits=args.rsa_bits
        )
        for scheme in schemes
    }
    configs = make_local_configs(
        args.parties,
        args.threshold,
        base_port=args.base_port,
        rpc_base_port=args.rpc_base_port,
        host=args.host,
    )

    out = pathlib.Path(args.out)
    if args.data_dir:
        from dataclasses import replace

        configs = [
            replace(c, data_dir=str(out / f"node{c.node_id}" / "data"))
            for c in configs
        ]
    for config in configs:
        node_dir = out / f"node{config.node_id}"
        node_dir.mkdir(parents=True, exist_ok=True)
        (node_dir / "config.json").write_text(config.to_json())
        (node_dir / "keystore.json").write_text(
            node_keystore(material, config.node_id)
        )
    public = {
        scheme: hexlify(export_public_key(scheme, km.public_key))
        for scheme, km in material.items()
    }
    (out / "public_keys.json").write_text(json.dumps(public, indent=2))
    print(
        f"dealt {len(schemes)} keys for a {args.threshold + 1}-of-{args.parties} "
        f"network under {out}/"
    )
    print("start nodes with:")
    for config in configs:
        print(
            f"  python3 -m repro.service.daemon "
            f"--config {out}/node{config.node_id}/config.json "
            f"--keystore {out}/node{config.node_id}/keystore.json"
        )


if __name__ == "__main__":
    main()
