#!/usr/bin/env python3
"""Precompute pipeline smoke gate (``make precompute-smoke``).

The docs/performance.md "Precompute pipeline" contract, exercised end to
end on real daemon processes:

* deal SG02 keys for a 2-node (t = 1) TCP cluster and start both daemons
  with ``--precompute-depth 8`` — the announce/refill/consume pipeline
  plus eager instance pipelining, per-node data dirs for the pool journal;
* announce two upcoming ciphertexts over the ``precompute`` RPC (every
  node must report them staged), then decrypt them: both must resolve
  correctly and the Prometheus scrape must count them as
  ``repro_precompute_served_total{op="decrypt",source="pool"}``;
* decrypt one *unannounced* ciphertext: correct result, counted under
  ``source="inline"`` — exhaustion degrades to the on-demand path;
* the per-(key, op) depth gauge and refill histogram must appear in the
  scrape, and ``node_stats`` must report the pipeline enabled;
* SIGTERM both daemons and assert clean exit with nothing orphaned —
  the refill loop must not pin the process past shutdown.

Exit status 0 on success; prints the offending assertion otherwise.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if __package__ is None and __name__ == "__main__":  # pragma: no cover
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import RpcError  # noqa: E402
from repro.service.client import ThetacryptClient  # noqa: E402
from repro.telemetry import parse_text  # noqa: E402

PARTIES, THRESHOLD = 2, 1
PRECOMPUTE_DEPTH = 8
# Distinct from the other smoke gates' port ranges so they can run back
# to back (TIME_WAIT) or even concurrently.
BASE_PORT, RPC_BASE_PORT = 22500, 22600

#: Environment for child processes: the daemons import ``repro`` from src.
CHILD_ENV = dict(
    os.environ,
    PYTHONPATH=str(REPO / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)


def spawn_daemon(out: Path, node_id: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.daemon",
            "--config", str(out / f"node{node_id}" / "config.json"),
            "--keystore", str(out / f"node{node_id}" / "keystore.json"),
            "--precompute-depth", str(PRECOMPUTE_DEPTH),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=CHILD_ENV,
    )


async def wait_for_ping(client: ThetacryptClient, node_id: int) -> None:
    for _ in range(150):
        try:
            await client.call(node_id, "ping", {})
            return
        except (OSError, RpcError):
            await asyncio.sleep(0.2)
    raise AssertionError(f"daemon {node_id} never answered ping")


def _counter(parsed: dict, name: str, **labels: str) -> float:
    return sum(
        value
        for (metric, metric_labels), value in parsed.items()
        if metric == name
        and all(dict(metric_labels).get(k) == v for k, v in labels.items())
    )


async def _await_counter(
    client: ThetacryptClient,
    node_id: int,
    name: str,
    expected: float,
    **labels: str,
) -> dict:
    """Poll one node's scrape until ``name{labels} >= expected``.

    The client returns on the *first* node's assembled result; its peers
    may still be folding the request into their own instances, so the
    counters converge shortly after — never instantly.
    """
    deadline = time.monotonic() + 15.0
    while True:
        parsed = parse_text(await client.metrics(node_id))
        if _counter(parsed, name, **labels) >= expected:
            return parsed
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"node {node_id}: {name}{labels} never reached {expected}: "
                f"{_counter(parsed, name, **labels)}"
            )
        await asyncio.sleep(0.1)


async def drive(client: ThetacryptClient) -> None:
    for node_id in range(1, PARTIES + 1):
        await wait_for_ping(client, node_id)
    print(f"  {PARTIES} daemons up with --precompute-depth {PRECOMPUTE_DEPTH}")

    # Announce two upcoming decrypts; every node stages its share (and,
    # eagerly, runs the whole instance ahead of demand).
    secrets = [b"precompute smoke one", b"precompute smoke two"]
    ciphertexts = [
        await client.encrypt("sg02", secret, b"smoke") for secret in secrets
    ]
    reports = await client.precompute("sg02", items=ciphertexts, label=b"smoke")
    for node_id, report in reports.items():
        assert not isinstance(report, Exception), f"node {node_id}: {report}"
        assert report.get("staged") == len(ciphertexts), (
            f"node {node_id} staged {report}"
        )
    print(f"  announced {len(ciphertexts)} requests: staged on every node")

    # Warm requests: correct results, served from the pipeline.
    for secret, ciphertext in zip(secrets, ciphertexts):
        assert await client.decrypt("sg02", ciphertext, b"smoke") == secret
    for node_id in range(1, PARTIES + 1):
        parsed = await _await_counter(
            client,
            node_id,
            "repro_precompute_served_total",
            len(ciphertexts),
            op="decrypt",
            source="pool",
        )
        depth_series = any(
            metric == "repro_precompute_pool_depth"
            for (metric, _) in parsed
        )
        assert depth_series, f"node {node_id}: no pool depth gauge scraped"
        refill_count = _counter(
            parsed, "repro_precompute_refill_seconds_count", op="decrypt"
        )
        assert refill_count >= len(ciphertexts), (
            f"node {node_id}: refill histogram counted {refill_count}"
        )
        stats = await client.node_stats(node_id)
        pipeline = stats.get("precompute", {})
        assert pipeline.get("enabled") is True, (
            f"node {node_id}: pipeline not enabled: {pipeline}"
        )
    print("  warm decrypts served from the pool (scrape + node_stats OK)")

    # An unannounced request degrades to the on-demand path, visibly.
    cold_secret = b"precompute smoke cold"
    cold = await client.encrypt("sg02", cold_secret, b"smoke")
    assert await client.decrypt("sg02", cold, b"smoke") == cold_secret
    for node_id in range(1, PARTIES + 1):
        await _await_counter(
            client,
            node_id,
            "repro_precompute_served_total",
            1,
            op="decrypt",
            source="inline",
        )
    print("  cold decrypt fell back inline (counter scraped)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="precompute-smoke-") as tmp:
        out = Path(tmp)
        print(f"dealing keys for a ({THRESHOLD}, {PARTIES}) network ...")
        deal = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "deal_keys.py"),
                "--parties", str(PARTIES),
                "--threshold", str(THRESHOLD),
                "--schemes", "sg02",
                "--base-port", str(BASE_PORT),
                "--rpc-base-port", str(RPC_BASE_PORT),
                "--data-dir",
                "--out", str(out),
            ],
            env=CHILD_ENV,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert deal.returncode == 0, deal.stderr
        daemons = [spawn_daemon(out, i) for i in range(1, PARTIES + 1)]
        try:

            async def run() -> None:
                addresses = {
                    i: ("127.0.0.1", RPC_BASE_PORT + i)
                    for i in range(1, PARTIES + 1)
                }
                client = ThetacryptClient(addresses)
                try:
                    await drive(client)
                finally:
                    await client.close()

            asyncio.run(run())
        finally:
            for daemon in daemons:
                if daemon.poll() is None:
                    daemon.terminate()
            # The orphan check: the refill task must not pin the daemon
            # past SIGTERM — both processes must exit on their own.
            deadline = time.monotonic() + 30.0
            for daemon in daemons:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    daemon.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    daemon.kill()
                    raise AssertionError(
                        "daemon survived SIGTERM: refill loop pinned shutdown"
                    )
        print("  both daemons exited cleanly after SIGTERM")
    print("precompute smoke OK")


if __name__ == "__main__":
    main()
