"""Bench smoke: the worker-pool offload ablation, persisted machine-readably.

Runs the workers-on/off ablation from ``repro.workers.harness`` against an
in-process BLS04 cluster and writes ``BENCH_offload.json`` next to the repo
root — the latest run (scheme, n/t, worker count, ops/s, request p50/p99,
event-loop lag p99, pool task counters, and the adaptive policy's
decisions) plus a bounded ``history`` of prior runs' summaries, so the
perf trajectory on a machine survives re-runs instead of being overwritten.

The pool runs under the **adaptive** offload policy — the deployment
default — so what this gate checks is what a real node does on this host:

* 1-core host: the policy keeps every op inline (``few_cores``), the pool
  never spawns, and throughput must stay within noise of the inline run
  (``speedup ≥ 0.95`` — the PR-5 static behaviour measured 0.66×).  This
  is an equivalence gate, so the two configurations run as interleaved
  repeats and the means are compared (cancels in-process drift);
* ≥2 cores: the policy routes through the pool (tasks ran, no fallbacks);
* ≥4 cores: the throughput (≥1.5×) and loop-lag claims apply.

Usage::

    PYTHONPATH=src python3 tools/bench_smoke.py [--out BENCH_offload.json]

Environment: ``REPRO_FAST=1`` shrinks the cluster (4 nodes instead of 16)
for constrained runners; the JSON records which shape ran.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workers.harness import run_ablation_series  # noqa: E402

#: Prior-run summaries kept in the persisted JSON (oldest dropped first).
HISTORY_LIMIT = 20


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


async def measure(
    scheme: str,
    parties: int,
    threshold: int,
    requests: int,
    workers: int,
    repeats: int,
):
    return await run_ablation_series(
        scheme, parties, threshold, requests=requests, workers=workers,
        policy="adaptive", repeats=repeats,
    )


def _summary(payload: dict) -> dict:
    """Compact history entry for one persisted run (host shape + speedup)."""
    runs = payload.get("runs", [])
    on = runs[1] if len(runs) > 1 else {}
    return {
        "timestamp": payload.get("timestamp"),
        "host": {
            "cores": payload.get("host", {}).get("cores"),
            "fast_mode": payload.get("host", {}).get("fast_mode"),
        },
        "speedup_ops_per_sec": payload.get("speedup_ops_per_sec"),
        "ops_per_sec_off": payload.get(
            "ops_per_sec_off", runs[0].get("ops_per_sec") if runs else None
        ),
        "ops_per_sec_on": payload.get("ops_per_sec_on", on.get("ops_per_sec")),
        "policy": {
            "mode": on.get("pool", {}).get("policy", {}).get("mode"),
            "decisions": on.get("pool", {}).get("policy", {}).get("decisions"),
        },
    }


def _load_history(out: Path) -> list[dict]:
    """Prior runs from the existing baseline file, oldest first."""
    if not out.exists():
        return []
    try:
        prior = json.loads(out.read_text())
    except (OSError, ValueError):
        return []
    history = list(prior.get("history", []))
    # Pre-history files (the PR-5 format) carried only their own run:
    # fold it in so the trajectory starts from the measured regression.
    if not history and "speedup_ops_per_sec" in prior:
        history.append(_summary(prior))
        return history
    if "speedup_ops_per_sec" in prior:
        history.append(_summary(prior))
    return history


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_offload.json"),
        help="where to write the JSON baseline",
    )
    parser.add_argument("--scheme", default="bls04")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    if fast_mode():
        parties, threshold, requests = 4, 1, 3
    else:
        parties, threshold, requests = 16, 3, 6

    cores = os.cpu_count() or 1
    # The 1-core check is an *equivalence* gate (pooled-but-inline must
    # match workers-off within noise), which a single off/on pair cannot
    # resolve: individual runs drift a few percent within one process.
    # Interleaved repeats cancel the drift; comparing means is then a
    # fair ±2% measurement.  Multi-core gates (1.5x) are coarse enough
    # for one pair.
    repeats = 3 if cores == 1 else 1
    print(
        f"offload ablation: {args.scheme} n={parties} t={threshold}, "
        f"{requests} concurrent requests, {cores} cores, adaptive policy, "
        f"{repeats} interleaved pair(s)"
    )
    offs, ons = asyncio.run(
        measure(args.scheme, parties, threshold, requests, args.workers, repeats)
    )
    off_ops = sum(r.ops_per_sec for r in offs) / len(offs)
    on_ops = sum(r.ops_per_sec for r in ons) / len(ons)
    # Everything except throughput (pool counters, policy decisions, lag)
    # is identical across repeats; report and gate on the last pair.
    off, on = offs[-1], ons[-1]

    for results, mean_ops in ((offs, off_ops), (ons, on_ops)):
        rounds = "/".join(f"{r.ops_per_sec:.2f}" for r in results)
        result = results[-1]
        print(
            f"  workers={result.workers}: {mean_ops:.2f} ops/s ({rounds}), "
            f"p50 {result.latency_p50 * 1000:.0f} ms, "
            f"p99 {result.latency_p99 * 1000:.0f} ms, "
            f"loop-lag p99 {result.loop_lag_p99 * 1000:.0f} ms, "
            f"pool ok={result.pool.get('tasks_ok', 0)} "
            f"fallbacks={result.pool.get('fallbacks', 0)}"
        )
    policy = on.pool.get("policy", {})
    print(
        f"  policy: mode={policy.get('mode')} cores={policy.get('cores')} "
        f"decisions={policy.get('decisions', {})} "
        f"reasons={policy.get('reasons', {})}"
    )

    out = Path(args.out)
    history = _load_history(out)[-HISTORY_LIMIT:]
    payload = {
        "benchmark": "crypto_pool_offload_ablation",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cores": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "fast_mode": fast_mode(),
        },
        "repeats": repeats,
        "runs": [r.to_dict() for pair in zip(offs, ons) for r in pair],
        "ops_per_sec_off": off_ops,
        "ops_per_sec_on": on_ops,
        "speedup_ops_per_sec": on_ops / off_ops if off_ops else None,
        "history": history,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(history)} prior runs in history)")

    speedup = payload["speedup_ops_per_sec"] or 0.0
    failures = []
    if cores >= 2:
        # Multi-core: the policy must actually route through the pool.
        if on.pool.get("tasks_ok", 0) <= 0:
            failures.append("pool executed no tasks")
        if on.pool.get("fallbacks", 0) != 0:
            failures.append(f"pooled run fell back inline {on.pool['fallbacks']}x")
    else:
        # 1-core host — the environment of the measured 0.66× regression.
        # The adaptive policy must keep every op inline and hold
        # throughput within noise of the workers-off run.
        reasons = policy.get("reasons", {})
        if policy.get("decisions", {}).get("offload", 0) != 0:
            failures.append(
                f"policy offloaded on a 1-core host: {policy.get('decisions')}"
            )
        if reasons.get("few_cores", 0) <= 0:
            failures.append(f"policy never ruled few_cores: {reasons}")
        if on.pool.get("tasks_ok", 0) != 0:
            failures.append(
                f"pool ran {on.pool['tasks_ok']} tasks despite 1 core"
            )
        if speedup < 0.95:
            failures.append(
                f"adaptive policy cost throughput on 1 core: "
                f"{speedup:.2f}x < 0.95x"
            )
    # The throughput claim needs spare cores for the workers; on smaller
    # hosts the ablation is informational (the JSON still records it).
    if cores >= 4 and on_ops < 1.5 * off_ops:
        failures.append(
            f"workers-on {on_ops:.2f} ops/s < 1.5x "
            f"workers-off {off_ops:.2f} ops/s on a {cores}-core host"
        )
    if cores >= 4 and on.loop_lag_p99 >= off.loop_lag_p99:
        failures.append("event-loop lag p99 did not drop with workers on")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(f"bench-smoke OK (speedup {speedup:.2f}x on {cores} cores)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
