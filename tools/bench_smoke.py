"""Bench smoke: the worker-pool offload ablation, persisted machine-readably.

Runs the workers-on/off ablation from ``repro.workers.harness`` against an
in-process BLS04 cluster and writes ``BENCH_offload.json`` next to the repo
root — one record per run with scheme, n/t, worker count, ops/s, request
p50/p99, event-loop lag p99, and the pool's task counters — so successive
runs on the same machine are comparable and CI artifacts are greppable.

Usage::

    PYTHONPATH=src python3 tools/bench_smoke.py [--out BENCH_offload.json]

Environment: ``REPRO_FAST=1`` shrinks the cluster (4 nodes instead of 16)
for constrained runners; the JSON records which shape ran.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workers.harness import run_ablation  # noqa: E402


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


async def measure(scheme: str, parties: int, threshold: int, requests: int, workers: int):
    return await run_ablation(
        scheme, parties, threshold, requests=requests, workers=workers
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_offload.json"),
        help="where to write the JSON baseline",
    )
    parser.add_argument("--scheme", default="bls04")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    if fast_mode():
        parties, threshold, requests = 4, 1, 3
    else:
        parties, threshold, requests = 16, 3, 6

    cores = os.cpu_count() or 1
    print(
        f"offload ablation: {args.scheme} n={parties} t={threshold}, "
        f"{requests} concurrent requests, {cores} cores"
    )
    off, on = asyncio.run(
        measure(args.scheme, parties, threshold, requests, args.workers)
    )

    for result in (off, on):
        print(
            f"  workers={result.workers}: {result.ops_per_sec:.2f} ops/s, "
            f"p50 {result.latency_p50 * 1000:.0f} ms, "
            f"p99 {result.latency_p99 * 1000:.0f} ms, "
            f"loop-lag p99 {result.loop_lag_p99 * 1000:.0f} ms, "
            f"pool ok={result.pool.get('tasks_ok', 0)} "
            f"fallbacks={result.pool.get('fallbacks', 0)}"
        )

    payload = {
        "benchmark": "crypto_pool_offload_ablation",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cores": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "fast_mode": fast_mode(),
        },
        "runs": [off.to_dict(), on.to_dict()],
        "speedup_ops_per_sec": (
            on.ops_per_sec / off.ops_per_sec if off.ops_per_sec else None
        ),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if on.pool.get("tasks_ok", 0) <= 0:
        failures.append("pool executed no tasks")
    if on.pool.get("fallbacks", 0) != 0:
        failures.append(f"pooled run fell back inline {on.pool['fallbacks']}x")
    # The throughput claim needs spare cores for the workers; on smaller
    # hosts the ablation is informational (the JSON still records it).
    if cores >= 4 and on.ops_per_sec < 1.5 * off.ops_per_sec:
        failures.append(
            f"workers-on {on.ops_per_sec:.2f} ops/s < 1.5x "
            f"workers-off {off.ops_per_sec:.2f} ops/s on a {cores}-core host"
        )
    if cores >= 4 and on.loop_lag_p99 >= off.loop_lag_p99:
        failures.append("event-loop lag p99 did not drop with workers on")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("bench-smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
