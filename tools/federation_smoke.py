#!/usr/bin/env python3
"""Federation smoke gate (``make federation-smoke``).

The docs/federation.md contract, exercised end to end on real processes:

* deal keys from a 2-group topology (``tools/deal_keys.py --topology``):
  group *alpha* (2 nodes) owns ``sg02``, group *beta* (2 nodes) owns
  ``bls04`` — disjoint keyspaces by pinned assignment;
* start all 4 node daemons plus one stateless router daemon
  (``repro.router.daemon``) and drive everything through the router's
  single RPC endpoint: SG02 encrypt→decrypt must land on alpha, BLS04
  sign/verify on beta;
* scrape the router over RPC and assert the per-shard telemetry —
  ``repro_router_requests_total{group=...}`` counted both shards and
  nothing errored;
* statelessness: SIGKILL the router mid-workload (concurrent idempotent
  decrypts in flight), restart it on the same port, and require every
  accepted request to complete — the client's idempotent retry plus the
  groups' result caches mean a router death loses nothing;
* SIGTERM everything and assert no process survives (no orphans).

Exit status 0 on success; prints the offending assertion otherwise.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if __package__ is None and __name__ == "__main__":  # pragma: no cover
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import RpcError  # noqa: E402
from repro.router.topology import GroupSpec, Topology  # noqa: E402
from repro.service.client import ThetacryptClient  # noqa: E402
from repro.telemetry import parse_text  # noqa: E402

# Distinct from the other smoke gates' port ranges so they can run back
# to back (TIME_WAIT) or even concurrently.
ALPHA_BASE, ALPHA_RPC = 23100, 23200
BETA_BASE, BETA_RPC = 23300, 23400
ROUTER_PORT = 23500
PARTIES, THRESHOLD = 2, 1
CONCURRENT_DECRYPTS = 8

CHILD_ENV = dict(
    os.environ,
    PYTHONPATH=str(REPO / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)

TOPOLOGY = Topology(
    groups=(
        GroupSpec(
            "alpha", PARTIES, THRESHOLD,
            base_port=ALPHA_BASE, rpc_base_port=ALPHA_RPC,
        ),
        GroupSpec(
            "beta", PARTIES, THRESHOLD,
            base_port=BETA_BASE, rpc_base_port=BETA_RPC,
        ),
    ),
    assignments={"sg02": "alpha", "bls04": "beta"},
)


def spawn_node(out: Path, group_id: str, node_id: int) -> subprocess.Popen:
    group_dir = out / f"group-{group_id}" / f"node{node_id}"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.daemon",
            "--config", str(group_dir / "config.json"),
            "--keystore", str(group_dir / "keystore.json"),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=CHILD_ENV,
    )


def spawn_router(out: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.router.daemon",
            "--topology", str(out / "topology.json"),
            "--rpc-port", str(ROUTER_PORT),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=CHILD_ENV,
    )


async def wait_for_ping(client: ThetacryptClient, node_id: int = 0) -> dict:
    for _ in range(150):
        try:
            return await client.call(node_id, "ping", {})
        except (OSError, RpcError):
            await asyncio.sleep(0.2)
    raise AssertionError("router never answered ping")


def shard_requests(metrics_text: str) -> dict[str, dict[str, float]]:
    """``group -> outcome -> count`` from a router scrape."""
    shards: dict[str, dict[str, float]] = {}
    for (name, labels), value in parse_text(metrics_text).items():
        if name != "repro_router_requests_total":
            continue
        by = dict(labels)
        outcomes = shards.setdefault(by["group"], {})
        outcomes[by["outcome"]] = outcomes.get(by["outcome"], 0) + value
    return shards


async def drive(client: ThetacryptClient) -> list[bytes]:
    """Both shards through the router; returns ciphertexts for the kill."""
    pong = await wait_for_ping(client)
    assert set(pong.get("groups", [])) == {"alpha", "beta"}, pong
    print(f"  router up, fronting groups {pong['groups']}")

    plaintext = b"federation smoke plaintext"
    ciphertext = await client.encrypt("sg02", plaintext, b"smoke")
    assert await client.decrypt("sg02", ciphertext, b"smoke") == plaintext
    print("  sg02 encrypt -> threshold decrypt OK (group alpha)")

    message = b"federation smoke message"
    signature = await client.sign("bls04", message)
    assert await client.verify_signature("bls04", message, signature)
    print("  bls04 threshold signature OK (group beta)")

    shards = shard_requests(await client.metrics(0))
    for group in ("alpha", "beta"):
        assert shards.get(group, {}).get("ok", 0) >= 2, (
            f"router served no requests for shard {group}: {shards}"
        )
        assert not shards[group].get("error"), (
            f"shard {group} reported errors: {shards}"
        )
    print(f"  per-shard router telemetry OK: "
          + " ".join(f"{g}:{int(s.get('ok', 0))}" for g, s in shards.items()))

    # Ciphertexts for the statelessness phase: distinct payloads so every
    # decrypt is a distinct (cached, idempotent) instance.
    return [
        await client.encrypt("sg02", f"kill-phase-{i}".encode(), b"smoke")
        for i in range(CONCURRENT_DECRYPTS)
    ]


async def kill_and_restart_router(
    out: Path, router: subprocess.Popen, ciphertexts: list[bytes]
) -> subprocess.Popen:
    """SIGKILL the router mid-workload; every accepted request completes."""
    # A patient client: it must ride out the router's death (connection
    # resets) and keep retrying the idempotent decrypts until the
    # replacement router answers.
    client = ThetacryptClient(
        {0: ("127.0.0.1", ROUTER_PORT)},
        max_retries=40,
        retry_base=0.05,
        retry_cap=0.5,
    )
    try:
        tasks = [
            asyncio.ensure_future(
                client.decrypt("sg02", ciphertext, b"smoke")
            )
            for ciphertext in ciphertexts
        ]
        await asyncio.sleep(0.15)  # let the workload reach the router
        router.kill()
        router.wait(timeout=30)
        print(f"  router SIGKILLed with {len(tasks)} decrypts in flight")
        await asyncio.sleep(0.3)
        replacement = spawn_router(out)
        results = await asyncio.gather(*tasks)
        for index, plaintext in enumerate(results):
            assert plaintext == f"kill-phase-{index}".encode(), (
                f"request {index} corrupted after router restart"
            )
        print(
            f"  all {len(results)} in-flight decrypts completed through "
            f"the restarted router (no accepted request lost)"
        )
        return replacement
    finally:
        await client.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="federation-smoke-") as tmp:
        out = Path(tmp)
        (out / "topology.json").write_text(TOPOLOGY.to_json())
        print("dealing disjoint keys across 2 groups ...")
        deal = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "deal_keys.py"),
                "--topology", str(out / "topology.json"),
                "--keys", "sg02,bls04",
                "--out", str(out),
            ],
            env=CHILD_ENV,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert deal.returncode == 0, deal.stderr
        # The dealer must have split the keyspace, not replicated it.
        alpha_keys = (out / "group-alpha" / "node1" / "keystore.json").read_text()
        beta_keys = (out / "group-beta" / "node1" / "keystore.json").read_text()
        assert "sg02" in alpha_keys and "sg02" not in beta_keys
        assert "bls04" in beta_keys and "bls04" not in alpha_keys
        print("  keystores disjoint: alpha holds sg02, beta holds bls04")

        daemons = [
            spawn_node(out, group_id, node_id)
            for group_id in ("alpha", "beta")
            for node_id in range(1, PARTIES + 1)
        ]
        router = spawn_router(out)
        try:

            async def run() -> subprocess.Popen:
                client = ThetacryptClient({0: ("127.0.0.1", ROUTER_PORT)})
                try:
                    ciphertexts = await drive(client)
                finally:
                    await client.close()
                return await kill_and_restart_router(out, router, ciphertexts)

            replacement = asyncio.run(run())
            daemons.append(replacement)
        finally:
            if router.poll() is None:
                router.terminate()
            for daemon in daemons:
                if daemon.poll() is None:
                    daemon.terminate()
            deadline = time.monotonic() + 30.0
            for daemon in daemons + [router]:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    daemon.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    daemon.kill()

        # No orphans: every spawned process (nodes, both routers) is gone.
        leaked = [d.pid for d in daemons + [router] if d.poll() is None]
        assert not leaked, f"processes survived shutdown: {leaked}"
        print("  all node/router processes exited after SIGTERM")
    print("federation smoke OK")


if __name__ == "__main__":
    main()
