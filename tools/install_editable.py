#!/usr/bin/env python3
"""Editable install fallback for offline environments.

``pip install -e .`` needs the ``wheel`` package to build PEP 660 metadata;
on machines without it (and without network) this script drops an equivalent
``.pth`` file into site-packages so ``import repro`` resolves to ``src/``.
"""

from __future__ import annotations

import pathlib
import site
import sys


def main() -> None:
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if not (src / "repro").is_dir():
        sys.exit(f"cannot find package under {src}")
    target = pathlib.Path(site.getsitepackages()[0]) / "repro-editable.pth"
    target.write_text(str(src) + "\n")
    print(f"wrote {target} -> {src}")


if __name__ == "__main__":
    main()
