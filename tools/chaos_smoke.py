#!/usr/bin/env python3
"""Chaos smoke gate: a seeded 4-node cluster with one crashed and one
byzantine node must still finalize SG02 decryption and BLS04 signing
(``make chaos-smoke``).

The scenario is a :class:`~repro.network.faults.FaultPlan` with a fixed
seed, so the run is reproducible; the gate asserts:

* both threshold operations finalize despite 2 of 4 nodes being faulty
  (t = 1 ⇒ quorum 2, which the two honest nodes reach on their own),
* the injected faults are visible as ``repro_faults_injected`` samples in
  the Prometheus scrape, and
* re-running the same seed yields an identical fault schedule (replayed
  offline through two independent :class:`FaultInjector` instances) and a
  second full cluster run that succeeds identically.

Exit status 0 on success; prints the offending assertion otherwise.
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

if __package__ is None and __name__ == "__main__":  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.network.faults import Crash, FaultInjector, FaultPlan, LinkFaults
from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service.client import ThetacryptClient
from repro.service.config import make_local_configs
from repro.service.node import ThetacryptNode
from repro.telemetry import parse_text

PARTIES, THRESHOLD = 4, 1
SEED = 2026

#: Node 4 is crash-stopped from the start, node 3 corrupts every outgoing
#: protocol payload; every link adds a little jittered delay.
PLAN = FaultPlan(
    seed=SEED,
    default=LinkFaults(delay=0.002, jitter=0.003),
    crashes=(Crash(node=4, at=0.0),),
    byzantine=(3,),
)


def metric_sum(parsed, name: str, **labels) -> float:
    wanted = set(labels.items())
    values = [
        value
        for (sample_name, sample_labels), value in parsed.items()
        if sample_name == name and wanted <= set(sample_labels)
    ]
    if not values:
        raise AssertionError(f"scrape is missing {name} with labels {labels}")
    return sum(values)


async def run_cluster(key_sets) -> tuple[bytes, str]:
    """One full chaos run; returns (recovered plaintext, metrics scrape)."""
    configs = make_local_configs(
        PARTIES,
        THRESHOLD,
        transport="local",
        rpc_base_port=0,
        fault_plan=PLAN,
        instance_timeout=15.0,
    )
    hub = LocalHub(latency=lambda a, b: 0.0005)
    nodes: list[ThetacryptNode] = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, keys in key_sets.items():
            node.install_key(
                key_id, keys.scheme, keys.public_key,
                keys.share_for(config.node_id),
            )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    try:
        ciphertext = await client.encrypt(
            "cipher-sg02", b"chaos smoke secret", b"l", node_id=1
        )
        plaintext = await client.decrypt("cipher-sg02", ciphertext, b"l")
        assert plaintext == b"chaos smoke secret", "SG02 decryption corrupted"

        signature = await client.sign("sig-bls04", b"chaos smoke")
        assert await client.verify_signature(
            "sig-bls04", b"chaos smoke", signature
        ), "BLS04 signature did not verify"

        scrape = await client.metrics(1)
        return plaintext, scrape
    finally:
        await client.close()
        for node in nodes:
            await node.stop()


def assert_identical_schedule() -> None:
    """Same seed ⇒ identical per-link fault schedule, replayed offline."""
    a, b = FaultInjector(PLAN), FaultInjector(PLAN)
    for src in range(1, PARTIES + 1):
        for dst in range(1, PARTIES + 1):
            if src == dst:
                continue
            seq_a = [a.decide(src, dst) for _ in range(200)]
            seq_b = [b.decide(src, dst) for _ in range(200)]
            assert seq_a == seq_b, f"schedule diverged on link {src}->{dst}"


async def main() -> None:
    print(f"dealing keys for a ({THRESHOLD}, {PARTIES}) network ...")
    key_sets = {
        "cipher-sg02": generate_keys("sg02", THRESHOLD, PARTIES),
        "sig-bls04": generate_keys("bls04", THRESHOLD, PARTIES),
    }

    print(
        f"chaos plan: seed={SEED}, crash node 4, byzantine node 3, "
        "jittered delay on every link"
    )
    plaintext_a, scrape = await run_cluster(key_sets)
    print("  run 1: SG02 decryption and BLS04 signing finalized")

    parsed = parse_text(scrape)
    assert parsed, "metrics scrape produced no samples"
    injected: dict[str, float] = {}
    for (name, labels), value in parsed.items():
        if name == "repro_faults_injected":
            kind = dict(labels)["kind"]
            injected[kind] = injected.get(kind, 0.0) + value
    assert injected, "no repro_faults_injected samples in the scrape"
    assert metric_sum(parsed, "repro_faults_injected", kind="crash") >= 1
    assert metric_sum(parsed, "repro_faults_injected", kind="corrupt") >= 1
    print(f"  faults visible in scrape: {injected}")

    assert_identical_schedule()
    print("  replay: same seed yields an identical per-link fault schedule")

    plaintext_b, _ = await run_cluster(key_sets)
    assert plaintext_b == plaintext_a
    print("  run 2: same seed, same outcome")

    print("chaos smoke OK")


if __name__ == "__main__":
    asyncio.run(main())
